//! The schema checker: §5.1's revised rule for specialization.
//!
//! > "The revised rule for specialization is that if a subclass specifies
//! > a new range for an existing attribute, then this range must itself be
//! > a specialization of the inherited range(s), or it must excuse the
//! > definition(s) of the constraint(s) being contradicted."
//!
//! The checker also enforces the multiple-inheritance side of the rule
//! (§5.3): a class inheriting mutually unsatisfiable constraints is an
//! error unless an excuse adjudicates, and it reports redundant excuses
//! as warnings. Because contradictions must be *explicit*, the checker can
//! distinguish erroneous definitions from intentional ones — the property
//! default inheritance destroys (§4.2.4).

use chc_model::{ClassId, Range, Schema, Sym};

use crate::diagnostics::{CheckReport, DiagKind, Diagnostic, Severity};

/// Checks a whole schema against the specialization-or-excuse rule.
///
/// ```
/// use chc_sdl::compile;
/// use chc_core::check;
///
/// let schema = compile("
///     class Physician;
///     class Psychologist;
///     class Patient with treatedBy: Physician;
///     class Alcoholic is-a Patient with treatedBy: Psychologist;
/// ").unwrap();
/// // Unexcused contradiction: rejected.
/// assert!(!check(&schema).is_ok());
///
/// let fixed = compile("
///     class Physician;
///     class Psychologist;
///     class Patient with treatedBy: Physician;
///     class Alcoholic is-a Patient with
///         treatedBy: Psychologist excuses treatedBy on Patient;
/// ").unwrap();
/// assert!(check(&fixed).is_ok());
/// ```
pub fn check(schema: &Schema) -> CheckReport {
    let _span = chc_obs::span(chc_obs::names::SPAN_CHECK_SCHEMA);
    let _mem = chc_obs::memalloc::span_mem(
        chc_obs::names::MEM_CHECK_SCHEMA_BYTES,
        chc_obs::names::MEM_CHECK_SCHEMA_PEAK,
    );
    let mut report = CheckReport::default();
    for class in schema.class_ids() {
        check_class(schema, class, &mut report);
    }
    report
}

/// Checks a single class (used incrementally by schema evolution: after a
/// local edit only the touched class and its descendants need rechecking —
/// the *locality* desideratum of §5).
pub fn check_class(schema: &Schema, class: ClassId, report: &mut CheckReport) {
    chc_obs::counter(chc_obs::names::CHECK_CLASSES, 1);
    // Attribution: while a recorder is on, everything this class's check
    // does downstream (subtype queries, sat calls, contradictions) is
    // labeled with the class id, and its wall time feeds the per-class
    // histogram behind `chc profile`'s time-share column.
    if chc_obs::enabled() {
        let _label = chc_obs::label_scope(class.index() as u64);
        // Memory attribution rides the same scope when the tracking
        // allocator is live: bytes allocated and peak net-live growth
        // while checking this class, keyed by the class id.
        let mem = chc_obs::memalloc::installed().then(chc_obs::memalloc::probe);
        let start = std::time::Instant::now();
        check_class_inner(schema, class, report);
        let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        chc_obs::labeled_histogram(
            chc_obs::names::CHECK_CLASS_NANOS,
            class.index() as u64,
            nanos,
        );
        if let Some(mem) = mem {
            let stats = mem.stats();
            drop(mem);
            chc_obs::labeled_counter(
                chc_obs::names::MEM_CHECK_CLASS_BYTES,
                class.index() as u64,
                stats.bytes_allocated,
            );
            chc_obs::labeled_histogram(
                chc_obs::names::MEM_CHECK_CLASS_PEAK,
                class.index() as u64,
                stats.peak_live,
            );
        }
        return;
    }
    check_class_inner(schema, class, report);
}

fn check_class_inner(schema: &Schema, class: ClassId, report: &mut CheckReport) {
    // Part 1: each locally declared attribute vs. each inherited constraint.
    for decl in &schema.class(class).attrs {
        check_declaration(schema, class, decl.name, report);
    }
    // Part 2: joint satisfiability of inherited constraints (multiple
    // inheritance / diamond memberships). Single-parent classes inherit
    // exactly their parent's constraint sets (checked at the parent), so
    // only locally declared attributes can introduce new pairs there;
    // join points must consider every applicable attribute.
    if schema.supers(class).len() < 2 {
        for decl in &schema.class(class).attrs {
            check_joint_satisfiability(schema, class, decl.name, report);
        }
    } else {
        for attr in schema.applicable_attrs(class) {
            check_joint_satisfiability(schema, class, attr, report);
        }
    }
}

fn check_declaration(schema: &Schema, class: ClassId, attr: Sym, report: &mut CheckReport) {
    let spec = &schema.declared_attr(class, attr).expect("declared").spec;
    let s_range = &spec.range;

    for &ancestor in schema.declarers_of(attr) {
        if !schema.is_strict_subclass(class, ancestor) {
            continue;
        }
        let decl_b = schema.declared_attr(ancestor, attr).expect("declarer");
        let r_range = &decl_b.spec.range;
        let contradiction = !r_range.subsumes(schema, s_range);
        let has_local_excuse = spec.excuses.iter().any(|e| e.on == ancestor && e.attr == attr);

        if contradiction {
            chc_obs::counter(chc_obs::names::CHECK_CONTRADICTIONS, 1);
            chc_obs::labeled_counter_scoped(chc_obs::names::CHECK_CONTRADICTIONS, 1);
        }
        if !contradiction {
            // Proper specialization; a local excuse for it is redundant.
            if has_local_excuse {
                report.diagnostics.push(Diagnostic {
                    severity: Severity::Warning,
                    kind: DiagKind::RedundantExcuse { on: ancestor },
                    class,
                    attr,
                });
            }
            continue;
        }

        // The constraint (ancestor, attr) is contradicted. Under the §5.2
        // semantics an instance of `class` escapes it only through an
        // excuser E it *belongs to* whose range S_E admits the value, so a
        // declaration is sound iff some excuser E with class ⊆ E has
        // S ⊆ S_E. (E = class itself when the local declaration carries
        // the excuse; then S_E = S trivially.)
        let mut first_applicable = None;
        let mut covered = false;
        let mut covered_by_other = false;
        for e in schema.applicable_excusers(class, ancestor, attr) {
            first_applicable.get_or_insert(e.excuser);
            if schema.excuser_spec(e).range.subsumes(schema, s_range) {
                covered = true;
                covered_by_other |= e.excuser != class;
            }
        }

        let Some(first_applicable) = first_applicable else {
            report.diagnostics.push(Diagnostic {
                severity: Severity::Error,
                kind: DiagKind::UnexcusedContradiction { contradicted: ancestor },
                class,
                attr,
            });
            continue;
        };

        if covered {
            chc_obs::counter(chc_obs::names::CHECK_EXCUSES_RESOLVED, 1);
        }
        if !covered {
            report.diagnostics.push(Diagnostic {
                severity: Severity::Error,
                kind: DiagKind::ExcuseRangeEscape {
                    contradicted: ancestor,
                    excuser: first_applicable,
                },
                class,
                attr,
            });
        } else if has_local_excuse && covered_by_other {
            // Already excused by an ancestor (the SpecialAlc case, §5.3):
            // "nothing wrong will happen if an excuse is added — it will
            // simply be redundant."
            report.diagnostics.push(Diagnostic {
                severity: Severity::Warning,
                kind: DiagKind::RedundantExcuse { on: ancestor },
                class,
                attr,
            });
        }
    }
}

/// For every pair of constraints on `attr` inherited by `class`, verify
/// that a common value can exist once applicable excuses are folded in.
/// The *allowed set* of a constraint for instances of `class` is its range
/// plus the ranges of excusers that `class` is a subclass of; two
/// constraints are jointly satisfiable (to first order) iff their allowed
/// sets overlap.
fn check_joint_satisfiability(
    schema: &Schema,
    class: ClassId,
    attr: Sym,
    report: &mut CheckReport,
) {
    // A class with a single parent and no local declaration inherits
    // exactly its parent's constraint set, whose joint satisfiability is
    // checked at the parent — and the allowed sets only *grow* toward the
    // leaves (more excusers become applicable), so the verdict carries
    // down. Only join points and declarers need checking.
    if schema.supers(class).len() < 2 && schema.declared_attr(class, attr).is_none() {
        return;
    }
    let constraints = schema.constraints_on(class, attr);
    if constraints.len() < 2 {
        return;
    }
    chc_obs::counter(chc_obs::names::CHECK_JOINT_SAT_CALLS, 1);

    // The allowed set of a constraint — its range plus the ranges of
    // excusers applicable to this class — is built lazily; most pairs
    // already pass on their raw ranges.
    let allowed = |b: ClassId, range| {
        let mut ranges: Vec<&Range> = vec![range];
        for e in schema.applicable_excusers(class, b, attr) {
            ranges.push(&schema.excuser_spec(e).range);
        }
        ranges
    };

    for i in 0..constraints.len() {
        for j in i + 1..constraints.len() {
            let (b1, spec1) = constraints[i];
            let (b2, spec2) = constraints[j];
            // Same downward-monotonicity argument per pair: if some direct
            // parent already inherits both constraints, it owns the check.
            let covered_by_parent = schema
                .supers(class)
                .iter()
                .any(|&p| schema.is_subclass(p, b1) && schema.is_subclass(p, b2));
            if covered_by_parent {
                continue;
            }
            if spec1.range.overlaps(schema, &spec2.range) {
                continue;
            }
            let rs1 = allowed(b1, &spec1.range);
            let rs2 = allowed(b2, &spec2.range);
            let overlap = rs1
                .iter()
                .any(|r1| rs2.iter().any(|r2| r1.overlaps(schema, r2)));
            if !overlap {
                // Avoid duplicating a contradiction already reported by the
                // declaration check (sub contradicts super directly).
                let related = schema.is_subclass(b1, b2) || schema.is_subclass(b2, b1);
                let already_reported = related
                    && report.diagnostics.iter().any(|d| {
                        d.attr == attr
                            && matches!(
                                d.kind,
                                DiagKind::UnexcusedContradiction { .. }
                                    | DiagKind::ExcuseRangeEscape { .. }
                            )
                            && (d.class == b1 || d.class == b2 || d.class == class)
                    });
                if !already_reported {
                    report.diagnostics.push(Diagnostic {
                        severity: Severity::Error,
                        kind: DiagKind::IncompatibleParents { a: b1, b: b2 },
                        class,
                        attr,
                    });
                }
            }
        }
    }

    // Exact k-way satisfiability over the allowed sets. Every provably
    // disjoint *pair* was already attributed by name above; this catches
    // the residual case where all pairs overlap but no single value
    // satisfies the whole set. Skip when this site already has an error
    // (the schema is known broken here; a second report is noise) or when
    // the whole constraint set is co-inherited through one parent and
    // nothing is declared locally (checked there).
    let already_errored = report.diagnostics.iter().any(|d| {
        d.class == class && d.attr == attr && d.severity == Severity::Error
    });
    let all_covered = schema.declared_attr(class, attr).is_none()
        && schema.supers(class).iter().any(|&p| {
            constraints.iter().all(|(b, _)| schema.is_subclass(p, *b))
        });
    if already_errored || all_covered {
        return;
    }
    let declaration_errored = report.diagnostics.iter().any(|d| {
        d.attr == attr
            && d.severity == Severity::Error
            && constraints.iter().any(|(b, _)| d.class == *b)
    });
    if declaration_errored {
        return;
    }
    // Fast path: if the constraint set has a *unique minimal* declarer M
    // whose declaration passed the acceptance rule, every value of M's
    // range already satisfies each ancestor constraint (directly or via
    // the excuse branch the instance is entitled to) — the site is
    // satisfiable by construction. Only genuine multi-lineage joins (two
    // or more incomparable minimal declarers) need the k-way test.
    let minimal_count = constraints
        .iter()
        .filter(|(b, _)| {
            !constraints
                .iter()
                .any(|(other, _)| other != b && schema.is_strict_subclass(*other, *b))
        })
        .count();
    if minimal_count <= 1 {
        return;
    }
    // Exact admission over the allowed sets, shared with chc-lint's
    // incoherence lint (L001).
    if crate::sat::admits_common_value_of(schema, class, attr, &constraints) {
        return;
    }

    report.diagnostics.push(Diagnostic {
        severity: Severity::Error,
        kind: DiagKind::JointlyUnsatisfiable {
            declarers: constraints.iter().map(|(b, _)| *b).collect(),
        },
        class,
        attr,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use chc_sdl::compile;

    fn check_src(src: &str) -> (Schema, CheckReport) {
        let schema = compile(src).unwrap();
        let report = check(&schema);
        (schema, report)
    }

    #[test]
    fn proper_specialization_is_clean() {
        let (_, report) = check_src(
            "
            class Person with age: 1..120;
            class Employee is-a Person with age: 16..65;
            ",
        );
        assert!(report.is_ok());
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    fn unexcused_contradiction_is_an_error() {
        let (schema, report) = check_src(
            "
            class Physician;
            class Psychologist;
            class Patient with treatedBy: Physician;
            class Alcoholic is-a Patient with treatedBy: Psychologist;
            ",
        );
        assert!(!report.is_ok());
        let errs: Vec<_> = report.errors().collect();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].class, schema.class_by_name("Alcoholic").unwrap());
        assert!(matches!(errs[0].kind, DiagKind::UnexcusedContradiction { .. }));
    }

    #[test]
    fn excused_contradiction_is_accepted() {
        let (_, report) = check_src(
            "
            class Physician;
            class Psychologist;
            class Patient with treatedBy: Physician;
            class Alcoholic is-a Patient with
                treatedBy: Psychologist excuses treatedBy on Patient;
            ",
        );
        assert!(report.is_ok(), "{:?}", report.diagnostics);
    }

    #[test]
    fn redundant_excuse_is_a_warning() {
        let (_, report) = check_src(
            "
            class Person with age: 1..120;
            class Employee is-a Person with
                age: 16..65 excuses age on Person;
            ",
        );
        assert!(report.is_ok());
        assert_eq!(report.warnings().count(), 1);
    }

    #[test]
    fn special_alc_inherits_the_excuse() {
        // §5.3: FOO ⊆ Psychologist needs no further excuse.
        let (_, report) = check_src(
            "
            class Physician;
            class Psychologist;
            class FOO is-a Psychologist;
            class Patient with treatedBy: Physician;
            class Alcoholic is-a Patient with
                treatedBy: Psychologist excuses treatedBy on Patient;
            class SpecialAlc is-a Alcoholic with treatedBy: FOO;
            ",
        );
        assert!(report.is_ok(), "{:?}", report.diagnostics);
        assert_eq!(report.warnings().count(), 0);
    }

    #[test]
    fn special_alc_with_redundant_excuse_warns() {
        let (_, report) = check_src(
            "
            class Physician;
            class Psychologist;
            class FOO is-a Psychologist;
            class Patient with treatedBy: Physician;
            class Alcoholic is-a Patient with
                treatedBy: Psychologist excuses treatedBy on Patient;
            class SpecialAlc is-a Alcoholic with
                treatedBy: FOO excuses treatedBy on Patient;
            ",
        );
        assert!(report.is_ok());
        assert_eq!(report.warnings().count(), 1);
    }

    #[test]
    fn special_alc_escaping_both_needs_excuses_on_both() {
        // §5.3: "if FOO is not a subclass of Psychologist, then treatedBy
        // needs to be excused on Alcoholic; and if FOO is not even a
        // subclass of Physicians, then treatedBy needs to be excused on
        // Patient as well."
        let base = "
            class Physician;
            class Psychologist;
            class Chiropractor;
            class Patient with treatedBy: Physician;
            class Alcoholic is-a Patient with
                treatedBy: Psychologist excuses treatedBy on Patient;
        ";
        // Missing both excuses: two errors.
        let (_, report) = check_src(&format!(
            "{base} class SpecialAlc is-a Alcoholic with treatedBy: Chiropractor;"
        ));
        assert_eq!(report.errors().count(), 2);
        // Excusing only Alcoholic still contradicts Patient.
        let (_, report) = check_src(&format!(
            "{base} class SpecialAlc is-a Alcoholic with
                treatedBy: Chiropractor excuses treatedBy on Alcoholic;"
        ));
        assert_eq!(report.errors().count(), 1);
        // Excusing both is clean.
        let (_, report) = check_src(&format!(
            "{base} class SpecialAlc is-a Alcoholic with
                treatedBy: Chiropractor
                    excuses treatedBy on Alcoholic
                    excuses treatedBy on Patient;"
        ));
        assert!(report.is_ok(), "{:?}", report.diagnostics);
    }

    #[test]
    fn unexcused_diamond_is_incompatible() {
        let (schema, report) = check_src(
            "
            class Person with opinion: {'Hawk, 'Dove, 'Ostrich};
            class Quaker is-a Person with opinion: {'Dove};
            class Republican is-a Person with opinion: {'Hawk};
            class QR is-a Quaker, Republican;
            ",
        );
        let errs: Vec<_> = report.errors().collect();
        assert_eq!(errs.len(), 1, "{:?}", report.diagnostics);
        assert_eq!(errs[0].class, schema.class_by_name("QR").unwrap());
        assert!(matches!(errs[0].kind, DiagKind::IncompatibleParents { .. }));
    }

    #[test]
    fn mutually_excused_diamond_is_accepted() {
        let (_, report) = check_src(
            "
            class Person with opinion: {'Hawk, 'Dove, 'Ostrich};
            class Quaker is-a Person with
                opinion: {'Dove} excuses opinion on Republican;
            class Republican is-a Person with
                opinion: {'Hawk} excuses opinion on Quaker;
            class QR is-a Quaker, Republican;
            ",
        );
        assert!(report.is_ok(), "{:?}", report.diagnostics);
    }

    #[test]
    fn one_sided_excuse_resolves_blood_pressure() {
        // §5.1: hemorrhage's low blood pressure overrides renal failure's
        // high blood pressure.
        let (_, report) = check_src(
            "
            class Patient;
            class Renal_Failure_Patient is-a Patient with bloodPressure: 140..220;
            class Hemorrhaging_Patient is-a Patient with
                bloodPressure: 50..90 excuses bloodPressure on Renal_Failure_Patient;
            class Both is-a Renal_Failure_Patient, Hemorrhaging_Patient;
            ",
        );
        assert!(report.is_ok(), "{:?}", report.diagnostics);
    }

    #[test]
    fn none_range_contradiction_requires_excuse() {
        // §4.1: ward is inapplicable to ambulatory patients.
        let (_, report) = check_src(
            "
            class Ward;
            class Patient with ward: Ward;
            class Ambulatory_Patient is-a Patient with ward: None;
            ",
        );
        assert_eq!(report.errors().count(), 1);
        let (_, report) = check_src(
            "
            class Ward;
            class Patient with ward: Ward;
            class Ambulatory_Patient is-a Patient with
                ward: None excuses ward on Patient;
            ",
        );
        assert!(report.is_ok());
    }

    #[test]
    fn excuse_range_escape_detected() {
        // The excuse admits Psychologist, but the subclass claims a range
        // outside both Physician and Psychologist.
        let (_, report) = check_src(
            "
            class Physician;
            class Psychologist;
            class Plumber;
            class Patient with treatedBy: Physician;
            class Alcoholic is-a Patient with
                treatedBy: Psychologist excuses treatedBy on Patient;
            class Odd is-a Alcoholic with treatedBy: Plumber;
            ",
        );
        let errs: Vec<_> = report.errors().collect();
        // Plumber contradicts Psychologist (Alcoholic) — unexcused — and
        // contradicts Physician (Patient) where the applicable excuse
        // (via Alcoholic) does not cover Plumber.
        assert_eq!(errs.len(), 2);
        assert!(errs
            .iter()
            .any(|e| matches!(e.kind, DiagKind::ExcuseRangeEscape { .. })));
    }

    #[test]
    fn grandparent_contradiction_also_checked() {
        let (_, report) = check_src(
            "
            class A with x: 1..100;
            class B is-a A with x: 10..50;
            class C is-a B with x: 200..300;
            ",
        );
        // C contradicts both A and B.
        assert_eq!(report.errors().count(), 2);
    }

    #[test]
    fn three_way_conflict_detected_even_when_pairs_overlap() {
        // {a,b} ∩ {b,c} ∩ {a,c}: every pair overlaps, the triple is empty.
        let (schema, report) = check_src(
            "
            class P1 with p: {'a, 'b};
            class P2 with p: {'b, 'c};
            class P3 with p: {'a, 'c};
            class Join is-a P1, P2, P3;
            ",
        );
        let errs: Vec<_> = report.errors().collect();
        assert_eq!(errs.len(), 1, "{}", report.render(&schema));
        assert_eq!(errs[0].class, schema.class_by_name("Join").unwrap());
        assert!(matches!(errs[0].kind, DiagKind::JointlyUnsatisfiable { .. }));
        // One excuse (usable by Join) restores satisfiability.
        let (schema2, report2) = check_src(
            "
            class P1 with p: {'a, 'b};
            class P2 with p: {'b, 'c};
            class P3 with p: {'a, 'c} excuses p on P2;
            class Join is-a P1, P2, P3;
            ",
        );
        // P3's excuse lets P2's constraint admit {'a,'c}; 'a satisfies all.
        assert!(report2.is_ok(), "{}", report2.render(&schema2));
    }

    #[test]
    fn three_way_integer_conflict_detected() {
        let (_, report) = check_src(
            "
            class P1 with p: 1..10;
            class P2 with p: 8..20;
            class P3 with p: 12..30;
            class Join is-a P1, P2, P3;
            ",
        );
        assert_eq!(report.errors().count(), 1);
        // With compatible intervals the join is fine.
        let (_, ok) = check_src(
            "
            class P1 with p: 1..10;
            class P2 with p: 8..20;
            class P3 with p: 9..30;
            class Join is-a P1, P2, P3;
            ",
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn cross_hierarchy_excuse_is_legal() {
        // Quaker excuses Republican although neither is an ancestor of the
        // other (§5.3: "any specification on a class can contradict (and
        // excuse) a constraint on any other class").
        let (_, report) = check_src(
            "
            class Person with opinion: {'Hawk, 'Dove};
            class Republican is-a Person with opinion: {'Hawk};
            class Quaker is-a Person with
                opinion: {'Dove} excuses opinion on Republican;
            ",
        );
        assert!(report.is_ok(), "{:?}", report.diagnostics);
    }
}
