//! A populated hospital database — the substrate for the query and
//! storage experiments (E4, E6).
//!
//! The generator builds the §3–§5 hospital schema (virtualized, so `H1`
//! and `A1` exist), then populates it with a controllable fraction of
//! exceptional patients: alcoholics treated by psychologists, tubercular
//! patients treated at Swiss hospitals (whose addresses have no `state`),
//! and ambulatory patients with no ward.

use chc_core::{virtualize, Virtualized};
use chc_extent::{refresh_virtual_extents, ExtentStore};
use chc_model::{ClassId, Oid, Sym, Value};

use crate::rng::SplitMix64;
use crate::vignettes::{compiled, HOSPITAL};

/// Sizing and mix parameters.
#[derive(Debug, Clone)]
pub struct HospitalParams {
    /// Number of patients.
    pub patients: usize,
    /// Number of ordinary hospitals (plus one Swiss hospital per ~10).
    pub hospitals: usize,
    /// Number of physicians (oncologists are a third of them).
    pub physicians: usize,
    /// Fraction of patients that are tubercular (treated at Swiss
    /// hospitals) — the ε the experiments sweep.
    pub tubercular_fraction: f64,
    /// Fraction of patients that are alcoholic.
    pub alcoholic_fraction: f64,
    /// Fraction of patients that are ambulatory (no ward).
    pub ambulatory_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HospitalParams {
    fn default() -> Self {
        HospitalParams {
            patients: 1000,
            hospitals: 20,
            physicians: 30,
            tubercular_fraction: 0.05,
            alcoholic_fraction: 0.05,
            ambulatory_fraction: 0.05,
            seed: 0x05EC1A1,
        }
    }
}

/// Frequently needed ids, resolved once.
#[derive(Debug, Clone)]
pub struct HospitalIds {
    /// `Patient`
    pub patient: ClassId,
    /// `Alcoholic`
    pub alcoholic: ClassId,
    /// `Tubercular_Patient`
    pub tubercular: ClassId,
    /// `Ambulatory_Patient`
    pub ambulatory: ClassId,
    /// `Cancer_Patient`
    pub cancer: ClassId,
    /// `Physician`
    pub physician: ClassId,
    /// `Psychologist`
    pub psychologist: ClassId,
    /// `Hospital`
    pub hospital: ClassId,
    /// `Address`
    pub address: ClassId,
    /// `treatedBy`
    pub treated_by: Sym,
    /// `treatedAt`
    pub treated_at: Sym,
    /// `location`
    pub location: Sym,
    /// `state`
    pub state: Sym,
    /// `city`
    pub city: Sym,
    /// `accreditation`
    pub accreditation: Sym,
    /// `ward`
    pub ward: Sym,
    /// `name`
    pub name: Sym,
    /// `age`
    pub age: Sym,
}

/// The generated database.
pub struct HospitalDb {
    /// The virtualized schema (`H1`, `A1` present) and virtual-class info.
    pub virtualized: Virtualized,
    /// The populated store, with virtual extents refreshed.
    pub store: ExtentStore,
    /// Resolved ids.
    pub ids: HospitalIds,
    /// All patients, in creation order.
    pub patients: Vec<Oid>,
}

/// Builds a populated hospital database.
pub fn build(params: &HospitalParams) -> HospitalDb {
    let schema = compiled(HOSPITAL);
    let v = virtualize(&schema).expect("hospital schema virtualizes");
    let s = &v.schema;
    let mut rng = SplitMix64::new(params.seed);

    let ids = HospitalIds {
        patient: s.class_by_name("Patient").unwrap(),
        alcoholic: s.class_by_name("Alcoholic").unwrap(),
        tubercular: s.class_by_name("Tubercular_Patient").unwrap(),
        ambulatory: s.class_by_name("Ambulatory_Patient").unwrap(),
        cancer: s.class_by_name("Cancer_Patient").unwrap(),
        physician: s.class_by_name("Physician").unwrap(),
        psychologist: s.class_by_name("Psychologist").unwrap(),
        hospital: s.class_by_name("Hospital").unwrap(),
        address: s.class_by_name("Address").unwrap(),
        treated_by: s.sym("treatedBy").unwrap(),
        treated_at: s.sym("treatedAt").unwrap(),
        location: s.sym("location").unwrap(),
        state: s.sym("state").unwrap(),
        city: s.sym("city").unwrap(),
        accreditation: s.sym("accreditation").unwrap(),
        ward: s.sym("ward").unwrap(),
        name: s.sym("name").unwrap(),
        age: s.sym("age").unwrap(),
    };
    let oncologist = s.class_by_name("Oncologist").unwrap();
    let ward_class = s.class_by_name("Ward").unwrap();
    let drug_class = s.class_by_name("Drug").unwrap();
    let street = s.sym("street").unwrap();
    let chemo = s.sym("chemoTherapy").unwrap();
    let states: Vec<Sym> = ["AL", "NJ", "NY", "WV"]
        .iter()
        .map(|t| s.sym(t).unwrap())
        .collect();
    let accreditations: Vec<Sym> = ["Local", "State", "Federal"]
        .iter()
        .map(|t| s.sym(t).unwrap())
        .collect();
    let switzerland = s.sym("Switzerland").unwrap();
    let country = s.sym("country").unwrap();

    let mut store = ExtentStore::new(s);

    // Ordinary hospitals with ordinary addresses.
    let mut ordinary_hospitals = Vec::new();
    for i in 0..params.hospitals.max(1) {
        let addr = store.create(s, &[ids.address]);
        store.set_attr(addr, street, Value::str(&format!("{i} Main St")));
        store.set_attr(addr, ids.city, Value::str(&format!("City{i}")));
        store.set_attr(addr, ids.state, Value::Tok(states[i % states.len()]));
        let h = store.create(s, &[ids.hospital]);
        store.set_attr(h, ids.accreditation, Value::Tok(accreditations[i % accreditations.len()]));
        store.set_attr(h, ids.location, Value::Obj(addr));
        ordinary_hospitals.push(h);
    }
    // Swiss hospitals: no accreditation, addresses without a state.
    let n_swiss = (params.hospitals / 10).max(1);
    let mut swiss_hospitals = Vec::new();
    for i in 0..n_swiss {
        let addr = store.create(s, &[ids.address]);
        store.set_attr(addr, street, Value::str(&format!("{i} Bahnhofstrasse")));
        store.set_attr(addr, ids.city, Value::str("Davos"));
        store.set_attr(addr, country, Value::Tok(switzerland));
        let h = store.create(s, &[ids.hospital]);
        store.set_attr(h, ids.location, Value::Obj(addr));
        swiss_hospitals.push(h);
    }

    // Staff.
    let mut physicians = Vec::new();
    let mut oncologists = Vec::new();
    for i in 0..params.physicians.max(1) {
        let class = if i % 3 == 0 { oncologist } else { ids.physician };
        let p = store.create(s, &[class]);
        store.set_attr(p, ids.name, Value::str(&format!("Dr{i}")));
        store.set_attr(p, ids.age, Value::Int(rng.gen_range_i64(30, 69)));
        let aff = ordinary_hospitals[i % ordinary_hospitals.len()];
        store.set_attr(p, s.sym("affiliatedWith").unwrap(), Value::Obj(aff));
        physicians.push(p);
        if class == oncologist {
            oncologists.push(p);
        }
    }
    let mut psychologists = Vec::new();
    for i in 0..(params.physicians / 3).max(1) {
        let p = store.create(s, &[ids.psychologist]);
        store.set_attr(p, ids.name, Value::str(&format!("Psy{i}")));
        store.set_attr(p, ids.age, Value::Int(rng.gen_range_i64(30, 69)));
        psychologists.push(p);
    }
    let wards: Vec<Oid> = (0..8).map(|_| store.create(s, &[ward_class])).collect();
    let drugs: Vec<Oid> = (0..4).map(|_| store.create(s, &[drug_class])).collect();

    // Patients.
    let mut patients = Vec::with_capacity(params.patients);
    for i in 0..params.patients {
        let roll: f64 = rng.gen_f64();
        let (classes, kind) = if roll < params.tubercular_fraction {
            (vec![ids.tubercular], "tb")
        } else if roll < params.tubercular_fraction + params.alcoholic_fraction {
            (vec![ids.alcoholic], "alc")
        } else if roll
            < params.tubercular_fraction
                + params.alcoholic_fraction
                + params.ambulatory_fraction
        {
            (vec![ids.ambulatory], "amb")
        } else if roll < params.tubercular_fraction
            + params.alcoholic_fraction
            + params.ambulatory_fraction
            + 0.1
        {
            (vec![ids.cancer], "cancer")
        } else {
            (vec![ids.patient], "plain")
        };
        let p = store.create(s, &classes);
        store.set_attr(p, ids.name, Value::str(&format!("Patient{i}")));
        store.set_attr(p, ids.age, Value::Int(rng.gen_range_i64(1, 119)));
        match kind {
            "tb" => {
                let h = swiss_hospitals[i % swiss_hospitals.len()];
                store.set_attr(p, ids.treated_at, Value::Obj(h));
                store.set_attr(p, ids.treated_by, Value::Obj(physicians[i % physicians.len()]));
                store.set_attr(p, ids.ward, Value::Obj(wards[i % wards.len()]));
            }
            "alc" => {
                store.set_attr(p, ids.treated_at, Value::Obj(ordinary_hospitals[i % ordinary_hospitals.len()]));
                store.set_attr(p, ids.treated_by, Value::Obj(psychologists[i % psychologists.len()]));
                store.set_attr(p, ids.ward, Value::Obj(wards[i % wards.len()]));
            }
            "amb" => {
                store.set_attr(p, ids.treated_at, Value::Obj(ordinary_hospitals[i % ordinary_hospitals.len()]));
                store.set_attr(p, ids.treated_by, Value::Obj(physicians[i % physicians.len()]));
                // No ward: the attribute is excused to None.
            }
            "cancer" => {
                store.set_attr(p, ids.treated_at, Value::Obj(ordinary_hospitals[i % ordinary_hospitals.len()]));
                store.set_attr(p, ids.treated_by, Value::Obj(oncologists[i % oncologists.len()]));
                store.set_attr(p, chemo, Value::Obj(drugs[i % drugs.len()]));
                store.set_attr(p, ids.ward, Value::Obj(wards[i % wards.len()]));
            }
            _ => {
                store.set_attr(p, ids.treated_at, Value::Obj(ordinary_hospitals[i % ordinary_hospitals.len()]));
                store.set_attr(p, ids.treated_by, Value::Obj(physicians[i % physicians.len()]));
                store.set_attr(p, ids.ward, Value::Obj(wards[i % wards.len()]));
            }
        }
        patients.push(p);
    }

    refresh_virtual_extents(&mut store, &v);
    HospitalDb { virtualized: v, store, ids, patients }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chc_core::{MissingPolicy, Semantics, ValidationOptions};
    use chc_extent::validate_stored;

    #[test]
    fn database_is_fully_valid() {
        let db = build(&HospitalParams { patients: 200, ..Default::default() });
        let opts = ValidationOptions {
            semantics: Semantics::Correct,
            missing: MissingPolicy::Absent,
        };
        let s = &db.virtualized.schema;
        let mut bad = 0;
        for &p in &db.patients {
            let violations = validate_stored(s, &db.store, opts, p);
            if !violations.is_empty() {
                bad += 1;
                if bad <= 3 {
                    for v in &violations {
                        eprintln!("{}", v.render(s));
                    }
                }
            }
        }
        assert_eq!(bad, 0, "{bad} invalid patients");
    }

    #[test]
    fn exceptional_fractions_are_respected() {
        let db = build(&HospitalParams {
            patients: 2000,
            tubercular_fraction: 0.2,
            alcoholic_fraction: 0.1,
            ..Default::default()
        });
        let n_tb = db.store.count(db.ids.tubercular) as f64;
        let n_alc = db.store.count(db.ids.alcoholic) as f64;
        assert!((n_tb / 2000.0 - 0.2).abs() < 0.05, "tb fraction {}", n_tb / 2000.0);
        assert!((n_alc / 2000.0 - 0.1).abs() < 0.05);
        assert_eq!(db.store.count(db.ids.patient), 2000);
    }

    #[test]
    fn virtual_extents_contain_the_swiss_hospitals() {
        let db = build(&HospitalParams { patients: 500, tubercular_fraction: 0.3, ..Default::default() });
        let h1 = db
            .virtualized
            .virtuals
            .iter()
            .find(|i| i.path.len() == 1)
            .unwrap();
        assert!(db.store.count(h1.class) >= 1);
        // Every H1 member lacks accreditation.
        for h in db.store.extent(h1.class) {
            assert!(db.store.get_attr(h, db.ids.accreditation).is_none());
        }
    }

    #[test]
    fn determinism() {
        let a = build(&HospitalParams { patients: 100, ..Default::default() });
        let b = build(&HospitalParams { patients: 100, ..Default::default() });
        assert_eq!(a.patients.len(), b.patients.len());
        assert_eq!(
            a.store.count(a.ids.tubercular),
            b.store.count(b.ids.tubercular)
        );
    }
}
