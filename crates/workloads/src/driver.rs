//! A closed/open-loop load harness over the excuses library.
//!
//! The paper's §6 asks that the excused-contradiction model hold up
//! under realistic mixed workloads ("statistics about exceptional
//! cases"); this module is the measurement surface for that claim and
//! for every later scale PR. It drives configurable mixes of
//! validate / query / insert / evolve operations against a [`Target`] —
//! today the in-process library ([`LibraryTarget`]), later a `chcd`
//! daemon — in two modes:
//!
//! * **closed loop**: N worker threads, each issuing the next operation
//!   as soon as the previous one (plus optional think time) completes.
//!   Throughput is an *output*; latency excludes queueing.
//! * **open loop**: operations arrive at a fixed rate on a shared
//!   schedule; latency is measured from the *intended* arrival time, so
//!   a stalled server accrues queueing delay instead of silently
//!   dropping load (coordinated-omission correction).
//!
//! The operation sequence is a pure function of `(seed, mix)` through
//! the in-tree SplitMix64 — the same config replays the same operation
//! kinds and parameters regardless of thread count, which the
//! determinism tests pin. Per-worker latency recorders
//! ([`chc_obs::Histogram`]) merge exactly like `chc-obs` trace tids:
//! each thread records locally, the driver folds them after the run.
//!
//! Results land in three sinks: `chc-load/1` JSON lines for
//! `$CHC_BENCH_JSON` (guarded by `chc_bench::gate`), a human-readable
//! text table, and a self-contained HTML report ([`report`]).

pub mod report;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;
use std::time::{Duration, Instant};

use chc_core::{virtualize, MissingPolicy, Semantics, ValidationOptions, Virtualized};
use chc_extent::{refresh_virtual_extents, validate_stored, ExtentStore};
use chc_model::{ClassId, Oid, Schema, Sym, Value};
use chc_obs::{Histogram, HistogramSummary};
use chc_query::{compile as compile_query, execute, CheckMode, Plan, Query};
use chc_types::{Atom, EntityFacts, TypeContext};

use crate::hospital::{build as build_hospital, HospitalParams};
use crate::rng::SplitMix64;

/// The four operation kinds a mix weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Validate one stored object against the schema (§5.2 semantics).
    Validate,
    /// Execute one compiled query plan (§5.4 check elimination).
    Query,
    /// Create one object and fill its attributes admissibly.
    Insert,
    /// Toggle an object's membership in a subclass, then re-validate —
    /// the §6 veracity story as an online operation.
    Evolve,
}

impl OpKind {
    /// All kinds, in mix-spec order.
    pub const ALL: [OpKind; 4] = [OpKind::Validate, OpKind::Query, OpKind::Insert, OpKind::Evolve];

    /// Stable lowercase name (mix-spec key and JSON id segment).
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Validate => "validate",
            OpKind::Query => "query",
            OpKind::Insert => "insert",
            OpKind::Evolve => "evolve",
        }
    }

    fn index(self) -> usize {
        match self {
            OpKind::Validate => 0,
            OpKind::Query => 1,
            OpKind::Insert => 2,
            OpKind::Evolve => 3,
        }
    }
}

/// Integer weights per operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixSpec {
    /// Weight per kind, in [`OpKind::ALL`] order.
    pub weights: [u32; 4],
}

impl Default for MixSpec {
    /// The ISSUE/ROADMAP reference mix: validate-heavy with a trickle of
    /// writes (`validate=70,query=20,insert=9,evolve=1`).
    fn default() -> Self {
        MixSpec { weights: [70, 20, 9, 1] }
    }
}

impl MixSpec {
    /// Parses `validate=70,query=20,insert=9,evolve=1`. Omitted kinds
    /// get weight 0; at least one weight must be positive.
    pub fn parse(spec: &str) -> Result<MixSpec, String> {
        let mut weights = [0u32; 4];
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("mix entry `{part}` is not `kind=weight`"))?;
            let weight: u32 = value
                .trim()
                .parse()
                .map_err(|e| format!("mix weight `{value}`: {e}"))?;
            let kind = OpKind::ALL
                .iter()
                .find(|k| k.name() == key.trim())
                .ok_or_else(|| format!("unknown mix kind `{}` (validate|query|insert|evolve)", key.trim()))?;
            weights[kind.index()] = weight;
        }
        if weights.iter().all(|&w| w == 0) {
            return Err(format!("mix `{spec}` has no positive weight"));
        }
        Ok(MixSpec { weights })
    }

    /// Total weight (> 0 by construction via [`MixSpec::parse`]).
    pub fn total(&self) -> u64 {
        self.weights.iter().map(|&w| w as u64).sum()
    }

    /// Canonical `validate=70,query=20,...` rendering (zero weights kept,
    /// so the string round-trips through [`MixSpec::parse`]).
    pub fn render(&self) -> String {
        OpKind::ALL
            .iter()
            .map(|k| format!("{}={}", k.name(), self.weights[k.index()]))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// One generated operation: the kind plus raw random payloads that the
/// target resolves against its current state (`pick` selects objects /
/// plans / recipes, `aux` breaks secondary ties, `value_seed` seeds
/// value generation for inserts). Keeping the payloads raw — rather than
/// resolved object ids — is what makes the *sequence* a pure function of
/// `(seed, mix)` even though the store mutates underneath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Operation {
    /// Position in the global operation sequence.
    pub index: u64,
    /// The operation kind, drawn from the mix weights.
    pub kind: OpKind,
    /// Primary selector payload.
    pub pick: u64,
    /// Secondary selector payload.
    pub aux: u64,
    /// Seed for any further per-operation randomness (insert values).
    pub value_seed: u64,
}

/// Stateless random-access generator: `op_at(i)` depends only on
/// `(seed, mix, i)`, so N workers can claim indices from a shared
/// counter and the executed sequence `0..total` is identical to a
/// single-threaded run.
#[derive(Debug, Clone)]
pub struct OpGenerator {
    seed: u64,
    mix: MixSpec,
}

impl OpGenerator {
    /// A generator for this seed and mix.
    pub fn new(seed: u64, mix: MixSpec) -> Self {
        OpGenerator { seed, mix }
    }

    /// The `i`-th operation of the sequence.
    pub fn op_at(&self, i: u64) -> Operation {
        // Decorrelate neighboring indices: a plain `seed + i·γ` would
        // make op i's draws overlap op i+1's, since SplitMix64 state
        // advances by a constant. One warm-up draw after an odd-multiplier
        // jolt gives each index an independent-looking stream.
        let mut rng = SplitMix64::new(self.seed ^ i.wrapping_mul(0xD1B5_4A32_D192_ED03));
        rng.next_u64();
        let roll = rng.next_u64() % self.mix.total();
        let mut acc = 0u64;
        let mut kind = OpKind::Validate;
        for k in OpKind::ALL {
            acc += self.mix.weights[k.index()] as u64;
            if roll < acc {
                kind = k;
                break;
            }
        }
        Operation {
            index: i,
            kind,
            pick: rng.next_u64(),
            aux: rng.next_u64(),
            value_seed: rng.next_u64(),
        }
    }
}

/// The outcome of one operation, as reported by the target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpOutcome {
    /// Did the operation succeed (e.g. validation found no violations)?
    pub ok: bool,
    /// A target-defined work figure (rows scanned, violations found, …).
    pub work: u64,
}

/// Something the driver can aim traffic at. Implemented in-process by
/// [`LibraryTarget`]; a future `chcd` client implements the same trait,
/// which is why the driver never touches the library directly.
pub trait Target: Send + Sync {
    /// Executes one operation against the target.
    fn run(&self, op: &Operation) -> OpOutcome;

    /// `(setting, value)` rows for the report's setup table.
    fn setup_rows(&self) -> Vec<(String, String)> {
        Vec::new()
    }
}

/// How traffic is issued.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// N workers, next op when the previous completes (+ think time).
    Closed {
        /// Worker threads.
        threads: usize,
        /// Pause between an operation's completion and the next issue.
        think: Duration,
    },
    /// Fixed arrival rate on a shared schedule; latency is measured from
    /// the intended arrival time (coordinated-omission corrected).
    Open {
        /// Worker threads servicing the arrival schedule.
        threads: usize,
        /// Target arrivals per second.
        rate: f64,
    },
}

impl Mode {
    fn threads(&self) -> usize {
        match *self {
            Mode::Closed { threads, .. } | Mode::Open { threads, .. } => threads.max(1),
        }
    }

    fn describe(&self) -> String {
        match *self {
            Mode::Closed { threads, think } if think.is_zero() => {
                format!("closed ({} thread(s))", threads.max(1))
            }
            Mode::Closed { threads, think } => {
                format!("closed ({} thread(s), think {think:?})", threads.max(1))
            }
            Mode::Open { threads, rate } => {
                format!("open ({} thread(s), {rate:.0} ops/s)", threads.max(1))
            }
        }
    }
}

/// When the run ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopRule {
    /// Wall-clock budget.
    Duration(Duration),
    /// Exact operation count — the reproducible choice for tests and the
    /// bench gate (the executed sequence is then thread-count invariant).
    Ops(u64),
}

/// A load-run configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Identifier for JSON ids (`load/<id>/<op>`) and report titles.
    pub id: String,
    /// Operation mix weights.
    pub mix: MixSpec,
    /// Closed or open loop.
    pub mode: Mode,
    /// Duration or op-count budget.
    pub stop: StopRule,
    /// Seed for the operation sequence.
    pub seed: u64,
    /// Time-series bucket width; [`Duration::ZERO`] picks one
    /// automatically (stop budget / 50, clamped into 50 ms ..= 1 s).
    pub window: Duration,
    /// `CHC_BENCH_SLOW`-style perturbation: operations whose
    /// `load/<id>/<op>` id contains this substring run twice per
    /// recorded latency — an honest ~2× regression for gate testing.
    pub slow_match: Option<String>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            id: "load".to_string(),
            mix: MixSpec::default(),
            mode: Mode::Closed { threads: 1, think: Duration::ZERO },
            stop: StopRule::Ops(1_000),
            seed: 0xC_10AD,
            window: Duration::ZERO,
            slow_match: std::env::var("CHC_BENCH_SLOW").ok().filter(|s| !s.is_empty()),
        }
    }
}

impl LoadConfig {
    fn effective_window(&self) -> Duration {
        if !self.window.is_zero() {
            return self.window;
        }
        let budget = match self.stop {
            StopRule::Duration(d) => d,
            StopRule::Ops(_) => Duration::from_secs(5),
        };
        (budget / 50).clamp(Duration::from_millis(50), Duration::from_secs(1))
    }
}

/// Parses `5s`, `250ms`, `1m`, or a bare number of seconds.
pub fn parse_duration(text: &str) -> Result<Duration, String> {
    let text = text.trim();
    let (digits, unit) = match text.find(|c: char| !c.is_ascii_digit() && c != '.') {
        Some(at) => text.split_at(at),
        None => (text, "s"),
    };
    let value: f64 = digits
        .parse()
        .map_err(|e| format!("duration `{text}`: {e}"))?;
    let secs = match unit.trim() {
        "s" | "sec" | "" => value,
        "ms" => value / 1_000.0,
        "us" => value / 1_000_000.0,
        "m" | "min" => value * 60.0,
        other => return Err(format!("duration `{text}`: unknown unit `{other}`")),
    };
    if !secs.is_finite() || secs < 0.0 {
        return Err(format!("duration `{text}` is not a non-negative time"));
    }
    Ok(Duration::from_secs_f64(secs))
}

/// Per-op-type result block.
#[derive(Debug, Clone)]
pub struct OpTypeStats {
    /// The operation kind.
    pub kind: OpKind,
    /// Operations executed.
    pub ops: u64,
    /// Operations whose outcome was ok.
    pub ok: u64,
    /// Operations whose outcome was a failure.
    pub failed: u64,
    /// Latency distribution in nanoseconds.
    pub latency: HistogramSummary,
}

/// One time-series bucket: throughput plus tail latency over the window.
#[derive(Debug, Clone, Copy)]
pub struct WindowPoint {
    /// Offset of the window start from the run start.
    pub start: Duration,
    /// Operations completed in the window.
    pub ops: u64,
    /// 95th-percentile latency over the window, ns (0 if empty).
    pub p95_ns: u64,
}

/// Everything a run produced, ready for the three sinks.
#[derive(Debug, Clone)]
pub struct LoadSummary {
    /// The configured id.
    pub id: String,
    /// The mix, canonically rendered.
    pub mix: MixSpec,
    /// Human description of the mode.
    pub mode_desc: String,
    /// Worker threads used.
    pub threads: usize,
    /// Sequence seed.
    pub seed: u64,
    /// Wall clock from first issue to last completion.
    pub elapsed: Duration,
    /// The time-series bucket width used.
    pub window: Duration,
    /// Total operations executed.
    pub total_ops: u64,
    /// Per-kind stats, in [`OpKind::ALL`] order, zero-op kinds omitted.
    pub per_op: Vec<OpTypeStats>,
    /// All-kinds latency distribution.
    pub overall: HistogramSummary,
    /// Throughput + p95 time series (trailing empty windows trimmed).
    pub windows: Vec<WindowPoint>,
    /// Target-provided setup rows for the report.
    pub setup: Vec<(String, String)>,
    /// Memory footprint over the run, when the host binary installed
    /// the [`chc_obs::memalloc`] tracking allocator (`None` otherwise).
    pub mem: Option<MemUsage>,
}

/// Memory footprint of a load run, from the tracking allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemUsage {
    /// Bytes allocated process-wide during the run.
    pub bytes_allocated: u64,
    /// Peak live bytes process-wide (includes setup before the run).
    pub bytes_peak: u64,
    /// Bytes live when the run finished.
    pub bytes_live: u64,
}

impl LoadSummary {
    /// Overall throughput in operations per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.total_ops as f64 / self.elapsed.as_secs_f64()
    }

    /// The `chc-load/1` JSON lines for `$CHC_BENCH_JSON`: one line per
    /// op kind plus an `all` aggregate. Each line doubles as a
    /// `type: "bench"` record (`median_ns`/`min_ns`/`max_ns`/`samples`/
    /// `iters`), so `bench-diff collect` folds load latencies into the
    /// same gate that guards the micro-benches.
    ///
    /// `min_ns` is reported as the p10 of the op-latency distribution,
    /// not the global minimum: a micro-bench sample is a batch *mean*
    /// (its min is already a robust statistic), whereas a load sample is
    /// one raw op, whose absolute minimum over thousands of ops is an
    /// extreme value that barely moves under a uniform slowdown. The
    /// gate's systematic-regression test compares fresh `min_ns` against
    /// the baseline median, so it needs the fast-path estimate that
    /// shifts with the distribution. `max_ns` stays the true maximum.
    pub fn to_bench_lines(&self) -> String {
        use chc_obs::json::JsonValue;
        let mut out = String::new();
        let mut line = |id: String, ops: u64, s: &HistogramSummary, throughput: f64| {
            let obj = JsonValue::object([
                ("type", JsonValue::string("bench")),
                ("schema", JsonValue::string("chc-load/1")),
                ("id", JsonValue::string(&id)),
                ("median_ns", JsonValue::number(s.p50 as f64)),
                ("min_ns", JsonValue::number(s.p10 as f64)),
                ("max_ns", JsonValue::number(s.max as f64)),
                ("samples", JsonValue::number(ops as f64)),
                ("iters", JsonValue::number(1.0)),
                ("mean_ns", JsonValue::number(s.mean)),
                ("p95_ns", JsonValue::number(s.p95 as f64)),
                ("p99_ns", JsonValue::number(s.p99 as f64)),
                ("p999_ns", JsonValue::number(s.p999 as f64)),
                ("throughput_ops_s", JsonValue::number(throughput)),
            ]);
            out.push_str(&obj.render());
            out.push('\n');
        };
        for op in &self.per_op {
            let share = if self.total_ops == 0 {
                0.0
            } else {
                op.ops as f64 / self.total_ops as f64
            };
            line(
                format!("load/{}/{}", self.id, op.kind.name()),
                op.ops,
                &op.latency,
                self.throughput() * share,
            );
        }
        line(
            format!("load/{}/all", self.id),
            self.total_ops,
            &self.overall,
            self.throughput(),
        );
        out
    }

    /// The human-readable table (the CLI prints this on stderr).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "load: {} — {} — mix {} — {:.2}s elapsed, {} ops ({:.0} ops/s)",
            self.id,
            self.mode_desc,
            self.mix.render(),
            self.elapsed.as_secs_f64(),
            self.total_ops,
            self.throughput(),
        );
        let _ = writeln!(
            out,
            "  {:<9} {:>9} {:>9} {:>6}  {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "op", "ops", "ok", "fail", "min", "p50", "p95", "p99", "p99.9", "max", "mean"
        );
        let mut rows: Vec<(&str, u64, u64, u64, HistogramSummary)> = self
            .per_op
            .iter()
            .map(|o| (o.kind.name(), o.ops, o.ok, o.failed, o.latency))
            .collect();
        rows.push((
            "all",
            self.total_ops,
            self.per_op.iter().map(|o| o.ok).sum(),
            self.per_op.iter().map(|o| o.failed).sum(),
            self.overall,
        ));
        for (name, ops, ok, fail, s) in rows {
            let _ = writeln!(
                out,
                "  {:<9} {:>9} {:>9} {:>6}  {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
                name,
                ops,
                ok,
                fail,
                fmt_ns(s.min),
                fmt_ns(s.p50),
                fmt_ns(s.p95),
                fmt_ns(s.p99),
                fmt_ns(s.p999),
                fmt_ns(s.max),
                fmt_ns(s.mean.round() as u64),
            );
        }
        if let Some(m) = &self.mem {
            let _ = writeln!(
                out,
                "  mem: {} allocated, peak live {}, live at end {}",
                fmt_bytes(m.bytes_allocated),
                fmt_bytes(m.bytes_peak),
                fmt_bytes(m.bytes_live),
            );
        }
        if !self.windows.is_empty() {
            let peak = self
                .windows
                .iter()
                .map(|w| w.ops)
                .max()
                .unwrap_or(0) as f64
                / self.window.as_secs_f64();
            let worst_p95 = self.windows.iter().map(|w| w.p95_ns).max().unwrap_or(0);
            let _ = writeln!(
                out,
                "  windows: {} × {:?} — peak {:.0} ops/s, worst p95 {}",
                self.windows.len(),
                self.window,
                peak,
                fmt_ns(worst_p95),
            );
        }
        out
    }
}

/// `1.2MB`-style byte rendering for tables and tiles.
pub(crate) fn fmt_bytes(bytes: u64) -> String {
    if bytes < 1_024 {
        format!("{bytes}B")
    } else if bytes < 1_024 * 1_024 {
        format!("{:.1}KB", bytes as f64 / 1_024.0)
    } else if bytes < 1_024 * 1_024 * 1_024 {
        format!("{:.1}MB", bytes as f64 / (1_024.0 * 1_024.0))
    } else {
        format!("{:.2}GB", bytes as f64 / (1_024.0 * 1_024.0 * 1_024.0))
    }
}

/// `1.2us`-style nanosecond rendering for tables.
pub(crate) fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// Per-worker recording state; merged after the run.
struct WorkerStats {
    hists: [Histogram; 4],
    ok: [u64; 4],
    failed: [u64; 4],
    windows: Vec<(u64, Histogram)>,
}

impl WorkerStats {
    fn new() -> Self {
        WorkerStats {
            hists: [Histogram::new(), Histogram::new(), Histogram::new(), Histogram::new()],
            ok: [0; 4],
            failed: [0; 4],
            windows: Vec::new(),
        }
    }

    fn record(&mut self, kind: OpKind, latency_ns: u64, ok: bool, window_idx: usize) {
        let k = kind.index();
        self.hists[k].record(latency_ns);
        if ok {
            self.ok[k] += 1;
        } else {
            self.failed[k] += 1;
        }
        while self.windows.len() <= window_idx {
            self.windows.push((0, Histogram::new()));
        }
        let cell = &mut self.windows[window_idx];
        cell.0 += 1;
        cell.1.record(latency_ns);
    }
}

/// Runs the configured load against `target` and folds the per-worker
/// recorders into a [`LoadSummary`].
pub fn run_load(target: &dyn Target, cfg: &LoadConfig) -> LoadSummary {
    let _span = chc_obs::span(chc_obs::names::SPAN_LOAD_RUN);
    let gen = OpGenerator::new(cfg.seed, cfg.mix);
    let threads = cfg.mode.threads();
    let window = cfg.effective_window();
    let next = AtomicU64::new(0);
    let slow: [bool; 4] = {
        let mut slow = [false; 4];
        if let Some(needle) = &cfg.slow_match {
            for k in OpKind::ALL {
                slow[k.index()] =
                    format!("load/{}/{}", cfg.id, k.name()).contains(needle.as_str());
            }
        }
        slow
    };
    // Crash-injection knob for the diagnostics smoke tests: the worker
    // that claims op index $CHC_CRASH_INJECT panics mid-run, exercising
    // the panic hook, sink flushing, and the chc-crash/1 report.
    let crash_inject: Option<u64> = std::env::var("CHC_CRASH_INJECT")
        .ok()
        .and_then(|v| v.parse().ok());
    let mem_before = chc_obs::memalloc::snapshot();
    let deadline = match cfg.stop {
        StopRule::Duration(d) => Some(d),
        StopRule::Ops(_) => None,
    };
    let op_budget = match cfg.stop {
        StopRule::Ops(n) => Some(n),
        StopRule::Duration(_) => None,
    };
    let start = Instant::now();
    let workers: Vec<WorkerStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let gen = &gen;
                let next = &next;
                scope.spawn(move || {
                    let mut stats = WorkerStats::new();
                    loop {
                        if let Some(d) = deadline {
                            if start.elapsed() >= d {
                                break;
                            }
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if let Some(n) = op_budget {
                            if i >= n {
                                break;
                            }
                        }
                        if crash_inject == Some(i) {
                            panic!("load: crash injected at op {i} (CHC_CRASH_INJECT)");
                        }
                        let op = gen.op_at(i);
                        let issue = match cfg.mode {
                            Mode::Open { rate, .. } => {
                                // Shared arrival schedule: op i is *due* at
                                // i/rate. Sleep until then; if we are late the
                                // latency below includes the queueing delay.
                                let due = Duration::from_secs_f64(i as f64 / rate.max(1e-9));
                                if let Some(d) = deadline {
                                    if due >= d {
                                        break;
                                    }
                                }
                                let now = start.elapsed();
                                if due > now {
                                    std::thread::sleep(due - now);
                                }
                                due
                            }
                            Mode::Closed { .. } => start.elapsed(),
                        };
                        let outcome = target.run(&op);
                        if slow[op.kind.index()] {
                            target.run(&op);
                        }
                        let done = start.elapsed();
                        let latency = done.saturating_sub(issue);
                        let latency_ns = latency.as_nanos().min(u64::MAX as u128) as u64;
                        let window_idx = (done.as_nanos() / window.as_nanos()) as usize;
                        stats.record(op.kind, latency_ns, outcome.ok, window_idx);
                        if let Mode::Closed { think, .. } = cfg.mode {
                            if !think.is_zero() {
                                std::thread::sleep(think);
                            }
                        }
                    }
                    stats
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("load worker")).collect()
    });
    let elapsed = start.elapsed();

    // Fold per-worker recorders: per-kind histograms merge pairwise, the
    // time series merges per window index.
    let mut hists = [Histogram::new(), Histogram::new(), Histogram::new(), Histogram::new()];
    let mut ok = [0u64; 4];
    let mut failed = [0u64; 4];
    let mut windows: Vec<(u64, Histogram)> = Vec::new();
    for w in &workers {
        for k in 0..4 {
            hists[k].merge(&w.hists[k]);
            ok[k] += w.ok[k];
            failed[k] += w.failed[k];
        }
        for (i, cell) in w.windows.iter().enumerate() {
            while windows.len() <= i {
                windows.push((0, Histogram::new()));
            }
            windows[i].0 += cell.0;
            windows[i].1.merge(&cell.1);
        }
    }
    while windows.last().is_some_and(|(n, _)| *n == 0) {
        windows.pop();
    }
    let mut overall = Histogram::new();
    let mut per_op = Vec::new();
    for k in OpKind::ALL {
        let i = k.index();
        overall.merge(&hists[i]);
        if hists[i].count() > 0 {
            per_op.push(OpTypeStats {
                kind: k,
                ops: hists[i].count(),
                ok: ok[i],
                failed: failed[i],
                latency: hists[i].summary(),
            });
        }
    }
    let total_ops = overall.count();
    chc_obs::counter(chc_obs::names::LOAD_OPS, total_ops);
    chc_obs::counter(chc_obs::names::LOAD_FAILURES, failed.iter().sum());
    LoadSummary {
        id: cfg.id.clone(),
        mix: cfg.mix,
        mode_desc: cfg.mode.describe(),
        threads,
        seed: cfg.seed,
        elapsed,
        window,
        total_ops,
        per_op,
        overall: overall.summary(),
        windows: windows
            .iter()
            .enumerate()
            .map(|(i, (n, h))| WindowPoint {
                start: window * i as u32,
                ops: *n,
                p95_ns: if h.count() == 0 { 0 } else { h.summary().p95 },
            })
            .collect(),
        setup: target.setup_rows(),
        mem: chc_obs::memalloc::installed().then(|| {
            let now = chc_obs::memalloc::snapshot();
            MemUsage {
                bytes_allocated: now.bytes_total.saturating_sub(mem_before.bytes_total),
                bytes_peak: now.bytes_peak,
                bytes_live: now.bytes_live,
            }
        }),
    }
}

// ---------------------------------------------------------------------------
// The in-process target.
// ---------------------------------------------------------------------------

/// How a value for an attribute is generated on insert, precomputed from
/// the effective conditional type under total membership knowledge.
/// `Ref` resolves at insert time against the live store (pick a member
/// of every listed class), so reference-valued schemas like the hospital
/// produce admissible objects too.
#[derive(Debug, Clone)]
enum Fill {
    Tokens(Vec<Sym>),
    Int(i64, i64),
    Str,
    Ref(Vec<ClassId>),
}

#[derive(Debug, Clone)]
struct Recipe {
    class: ClassId,
    fills: Vec<(Sym, Fill)>,
}

struct SharedState {
    store: ExtentStore,
    objects: Vec<Oid>,
}

/// Tuning for [`LibraryTarget::new`].
#[derive(Debug, Clone)]
pub struct TargetOptions {
    /// Probability that an insert draws its class from the excused pool
    /// (classes under at least one applicable excuser) — the ε knob.
    pub epsilon: f64,
    /// Refresh virtual extents after every this many write operations
    /// (0 disables batched refreshing). Amortized §5.6 maintenance.
    pub refresh_every: u64,
    /// Cap on the precompiled query-plan pool.
    pub max_plans: usize,
    /// Validation options used by validate and evolve operations.
    pub validation: ValidationOptions,
}

impl Default for TargetOptions {
    fn default() -> Self {
        TargetOptions {
            epsilon: 0.05,
            refresh_every: 64,
            max_plans: 32,
            validation: ValidationOptions {
                semantics: Semantics::Correct,
                missing: MissingPolicy::Vacuous,
            },
        }
    }
}

/// The in-process [`Target`]: a virtualized schema plus an extent store
/// behind one `RwLock`. Validate and query take the read lock; insert
/// and evolve the write lock — the contention profile a real server
/// would see from a naive single-store design, which is exactly what
/// later storage PRs are measured against.
pub struct LibraryTarget {
    v: Virtualized,
    shared: RwLock<SharedState>,
    plans: Vec<Plan>,
    recipes: Vec<Recipe>,
    recipe_by_class: std::collections::BTreeMap<ClassId, usize>,
    excused_recipes: Vec<usize>,
    plain_recipes: Vec<usize>,
    evolve_pairs: Vec<(ClassId, ClassId)>,
    opts: TargetOptions,
    initial_objects: usize,
    writes: AtomicU64,
}

impl LibraryTarget {
    /// Builds a target from a virtualized schema, a populated store, and
    /// the object pool eligible for validate/evolve picks. Precompiles
    /// the query-plan pool and the per-class insert recipes.
    pub fn new(
        v: Virtualized,
        store: ExtentStore,
        objects: Vec<Oid>,
        opts: TargetOptions,
    ) -> LibraryTarget {
        let schema = &v.schema;
        let ctx = TypeContext::with_virtuals(&v);

        // Insert recipes: one per concrete class, drawn from the
        // effective conditional type under total membership knowledge
        // (the same rule `populate()` applies per object, hoisted to
        // setup so the hot path allocates nothing schema-sized).
        let mut recipes = Vec::new();
        let mut excused_recipes = Vec::new();
        let mut plain_recipes = Vec::new();
        let excused_sites: Vec<(ClassId, Sym)> = schema.excused_constraints().collect();
        for class in schema.class_ids() {
            if schema.class(class).is_virtual() {
                continue;
            }
            let mut facts = EntityFacts::of_class(schema, class);
            for other in schema.class_ids() {
                if !facts.known_in(other) {
                    facts.assume_not_in(schema, other);
                }
            }
            let mut fills = Vec::new();
            for attr in schema.applicable_attrs(class) {
                let Some(ty) = ctx.attr_type(&facts, attr) else { continue };
                let mut tokens = Vec::new();
                let mut int_range = None;
                let mut has_str = false;
                let mut ref_classes: Option<Vec<ClassId>> = None;
                for atom in &ty.atoms {
                    match atom {
                        Atom::Enum(set) => tokens.extend(set.iter().copied()),
                        Atom::Int(lo, hi) => int_range = Some((*lo, *hi)),
                        Atom::Str => has_str = true,
                        Atom::Entity(entity) => {
                            ref_classes.get_or_insert_with(|| {
                                entity
                                    .pos
                                    .iter()
                                    .map(|i| ClassId::from_raw(i as u32))
                                    .collect()
                            });
                        }
                        _ => {}
                    }
                }
                if let Some((lo, hi)) = int_range {
                    fills.push((attr, Fill::Int(lo, hi)));
                } else if !tokens.is_empty() {
                    fills.push((attr, Fill::Tokens(tokens)));
                } else if has_str {
                    fills.push((attr, Fill::Str));
                } else if let Some(classes) = ref_classes {
                    fills.push((attr, Fill::Ref(classes)));
                }
            }
            let idx = recipes.len();
            let excused = excused_sites.iter().any(|&(on, attr)| {
                schema.is_subclass(class, on)
                    && schema.applicable_excusers(class, on, attr).next().is_some()
            });
            if excused {
                excused_recipes.push(idx);
            } else {
                plain_recipes.push(idx);
            }
            recipes.push(Recipe { class, fills });
        }

        // Query-plan pool: stride-sample (class, attr) projection sites
        // so the pool spans the hierarchy instead of clustering on the
        // first classes, and keep only plans that type-check.
        let mut candidates = Vec::new();
        for class in schema.class_ids() {
            if schema.class(class).is_virtual() {
                continue;
            }
            for attr in schema.applicable_attrs(class) {
                candidates.push((class, attr));
            }
        }
        let stride = (candidates.len() / opts.max_plans.max(1)).max(1);
        let mut plans = Vec::new();
        for (class, attr) in candidates.iter().step_by(stride) {
            if plans.len() >= opts.max_plans {
                break;
            }
            let query = Query::over(*class).emit(vec![*attr]);
            if let Ok(plan) = compile_query(&ctx, &query, CheckMode::Eliminate) {
                plans.push(plan);
            }
        }

        // Evolve pairs: (base, subclass) membership toggles.
        let mut evolve_pairs = Vec::new();
        for class in schema.class_ids() {
            if schema.class(class).is_virtual() {
                continue;
            }
            for sub in schema.direct_subclasses(class) {
                if !schema.class(sub).is_virtual() {
                    evolve_pairs.push((class, sub));
                }
            }
        }

        let initial_objects = objects.len();
        let recipe_by_class = recipes
            .iter()
            .enumerate()
            .map(|(i, r)| (r.class, i))
            .collect();
        LibraryTarget {
            v,
            shared: RwLock::new(SharedState { store, objects }),
            plans,
            recipes,
            recipe_by_class,
            excused_recipes,
            plain_recipes,
            evolve_pairs,
            opts,
            initial_objects,
            writes: AtomicU64::new(0),
        }
    }

    /// Builds a target from a schema by virtualizing it and populating
    /// `per_class` instances of every concrete class via
    /// [`crate::populate`].
    pub fn from_schema(
        schema: &Schema,
        per_class: usize,
        seed: u64,
        opts: TargetOptions,
    ) -> Result<LibraryTarget, String> {
        let v = virtualize(schema).map_err(|e| e.to_string())?;
        let (mut store, objects) = crate::populate(
            &v.schema,
            &crate::PopulateParams { per_class, seed },
        );
        refresh_virtual_extents(&mut store, &v);
        Ok(LibraryTarget::new(v, store, objects, opts))
    }

    /// The virtualized schema the target runs on.
    pub fn schema(&self) -> &Schema {
        &self.v.schema
    }

    /// Applies a recipe's fills to `oid`: scalar fills draw from the
    /// per-op rng; `Ref` fills pick a live member of the required
    /// classes (left unset when no candidate exists yet). Returns the
    /// number of attributes set.
    fn apply_fills(
        &self,
        state: &mut SharedState,
        oid: Oid,
        fills: &[(Sym, Fill)],
        rng: &mut SplitMix64,
    ) -> u64 {
        let mut applied = 0u64;
        for (attr, fill) in fills {
            let value = match fill {
                Fill::Tokens(tokens) => {
                    Some(Value::Tok(*rng.choose(tokens).expect("non-empty fill")))
                }
                Fill::Int(lo, hi) => Some(Value::Int(rng.gen_range_i64(*lo, *hi))),
                Fill::Str => {
                    Some(Value::Str(format!("v{}", rng.next_u64() % 1_000_000).into()))
                }
                Fill::Ref(classes) => {
                    let candidates: Vec<Oid> = match classes.split_first() {
                        Some((first, rest)) => state
                            .store
                            .extent(*first)
                            .filter(|&o| {
                                o != oid && rest.iter().all(|c| state.store.is_member(o, *c))
                            })
                            .collect(),
                        None => Vec::new(),
                    };
                    rng.choose(&candidates).map(|&o| Value::Obj(o))
                }
            };
            if let Some(value) = value {
                state.store.set_attr(oid, *attr, value);
                applied += 1;
            }
        }
        applied
    }

    /// Amortized §5.6 maintenance: every `refresh_every` writes, the
    /// writer holding the lock refreshes all virtual extents.
    fn note_write(&self, state: &mut SharedState) {
        let n = self.writes.fetch_add(1, Ordering::Relaxed) + 1;
        if self.opts.refresh_every > 0 && n.is_multiple_of(self.opts.refresh_every) {
            refresh_virtual_extents(&mut state.store, &self.v);
            chc_obs::counter(chc_obs::names::LOAD_VIRTUAL_REFRESHES, 1);
        }
    }
}

impl Target for LibraryTarget {
    fn run(&self, op: &Operation) -> OpOutcome {
        let schema = &self.v.schema;
        match op.kind {
            OpKind::Validate => {
                let state = self.shared.read().expect("load state lock");
                if state.objects.is_empty() {
                    return OpOutcome { ok: true, work: 0 };
                }
                let oid = state.objects[(op.pick % state.objects.len() as u64) as usize];
                let violations =
                    validate_stored(schema, &state.store, self.opts.validation, oid);
                OpOutcome { ok: violations.is_empty(), work: violations.len() as u64 }
            }
            OpKind::Query => {
                if self.plans.is_empty() {
                    return OpOutcome { ok: true, work: 0 };
                }
                let plan = &self.plans[(op.pick % self.plans.len() as u64) as usize];
                let state = self.shared.read().expect("load state lock");
                let result = execute(schema, &state.store, plan);
                OpOutcome { ok: true, work: result.stats.rows_scanned as u64 }
            }
            OpKind::Insert => {
                if self.recipes.is_empty() {
                    return OpOutcome { ok: true, work: 0 };
                }
                // ε-biased class choice: excused-pool classes exercise
                // the excuse branch of every later validate that picks
                // the object.
                let excused_roll = (op.aux >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let pool = if excused_roll < self.opts.epsilon && !self.excused_recipes.is_empty()
                {
                    &self.excused_recipes
                } else if !self.plain_recipes.is_empty() {
                    &self.plain_recipes
                } else {
                    &self.excused_recipes
                };
                let recipe = &self.recipes[pool[(op.pick % pool.len() as u64) as usize]];
                let mut rng = SplitMix64::new(op.value_seed);
                let mut state = self.shared.write().expect("load state lock");
                let state = &mut *state;
                let oid = state.store.create(schema, &[recipe.class]);
                let work = self.apply_fills(state, oid, &recipe.fills, &mut rng);
                state.objects.push(oid);
                self.note_write(state);
                OpOutcome { ok: true, work }
            }
            OpKind::Evolve => {
                if self.evolve_pairs.is_empty() {
                    return OpOutcome { ok: true, work: 0 };
                }
                let (base, sub) =
                    self.evolve_pairs[(op.pick % self.evolve_pairs.len() as u64) as usize];
                let mut state = self.shared.write().expect("load state lock");
                let state = &mut *state;
                let count = state.store.count(base);
                if count == 0 {
                    return OpOutcome { ok: true, work: 0 };
                }
                let oid = state
                    .store
                    .extent(base)
                    .nth((op.aux % count as u64) as usize)
                    .expect("extent index in range");
                if state.store.is_member(oid, sub) {
                    state.store.remove_from_class(schema, oid, sub);
                } else {
                    state.store.add_to_class(schema, oid, sub);
                    // Evolution with repair: refill the object per the
                    // subclass recipe so the promotion is admissible
                    // (e.g. a new Alcoholic gets a Psychologist), leaving
                    // genuine contradictions for validation to report.
                    if let Some(&i) = self.recipe_by_class.get(&sub) {
                        let mut rng = SplitMix64::new(op.value_seed);
                        self.apply_fills(state, oid, &self.recipes[i].fills, &mut rng);
                    }
                }
                // Veracity (§6): an evolution is immediately re-checked.
                let violations =
                    validate_stored(schema, &state.store, self.opts.validation, oid);
                self.note_write(state);
                OpOutcome { ok: violations.is_empty(), work: 1 + violations.len() as u64 }
            }
        }
    }

    fn setup_rows(&self) -> Vec<(String, String)> {
        let state = self.shared.read().expect("load state lock");
        vec![
            ("classes".to_string(), self.v.schema.num_classes().to_string()),
            ("attribute declarations".to_string(), self.v.schema.num_attr_decls().to_string()),
            ("initial objects".to_string(), self.initial_objects.to_string()),
            ("objects now".to_string(), state.store.num_objects().to_string()),
            ("query plans".to_string(), self.plans.len().to_string()),
            ("insert recipes".to_string(), self.recipes.len().to_string()),
            (
                "excused classes (ε pool)".to_string(),
                format!("{} of {}", self.excused_recipes.len(), self.recipes.len()),
            ),
            ("evolve pairs".to_string(), self.evolve_pairs.len().to_string()),
            ("epsilon".to_string(), format!("{:.3}", self.opts.epsilon)),
            (
                "virtual refresh batch".to_string(),
                self.opts.refresh_every.to_string(),
            ),
        ]
    }
}

/// A hospital-database target with the exceptional fraction driven by ε:
/// ε/2 tubercular, ε/4 alcoholic, ε/4 ambulatory patients — the
/// substrate E13's latency-vs-ε table sweeps.
pub fn hospital_target(patients: usize, epsilon: f64, seed: u64) -> LibraryTarget {
    let db = build_hospital(&HospitalParams {
        patients,
        tubercular_fraction: epsilon / 2.0,
        alcoholic_fraction: epsilon / 4.0,
        ambulatory_fraction: epsilon / 4.0,
        seed,
        ..HospitalParams::default()
    });
    let opts = TargetOptions {
        epsilon,
        validation: ValidationOptions {
            semantics: Semantics::Correct,
            missing: MissingPolicy::Vacuous,
        },
        ..TargetOptions::default()
    };
    LibraryTarget::new(db.virtualized, db.store, db.patients, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_parses_renders_and_rejects() {
        let mix = MixSpec::parse("validate=70,query=20,insert=9,evolve=1").unwrap();
        assert_eq!(mix, MixSpec::default());
        assert_eq!(mix.render(), "validate=70,query=20,insert=9,evolve=1");
        assert_eq!(MixSpec::parse(&mix.render()).unwrap(), mix);
        let sparse = MixSpec::parse("query=1").unwrap();
        assert_eq!(sparse.weights, [0, 1, 0, 0]);
        assert!(MixSpec::parse("validate=0").is_err());
        assert!(MixSpec::parse("frobnicate=3").is_err());
        assert!(MixSpec::parse("validate").is_err());
    }

    #[test]
    fn durations_parse() {
        assert_eq!(parse_duration("5s").unwrap(), Duration::from_secs(5));
        assert_eq!(parse_duration("250ms").unwrap(), Duration::from_millis(250));
        assert_eq!(parse_duration("2").unwrap(), Duration::from_secs(2));
        assert_eq!(parse_duration("1m").unwrap(), Duration::from_secs(60));
        assert!(parse_duration("5 fortnights").is_err());
    }

    #[test]
    fn op_generator_is_pure_and_mix_faithful() {
        let gen = OpGenerator::new(42, MixSpec::default());
        let a: Vec<Operation> = (0..500).map(|i| gen.op_at(i)).collect();
        let b: Vec<Operation> = (0..500).map(|i| gen.op_at(i)).collect();
        assert_eq!(a, b);
        // Random access equals sequential access (pure function of i).
        assert_eq!(gen.op_at(499), a[499]);
        // The kind distribution tracks the 70/20/9/1 weights.
        let n = 10_000u64;
        let mut counts = [0u64; 4];
        for i in 0..n {
            counts[gen.op_at(i).kind.index()] += 1;
        }
        assert!((counts[0] as f64 / n as f64 - 0.70).abs() < 0.03, "{counts:?}");
        assert!((counts[1] as f64 / n as f64 - 0.20).abs() < 0.03, "{counts:?}");
        assert!(counts[3] > 0, "{counts:?}");
    }

    #[test]
    fn closed_loop_run_over_hospital_covers_all_kinds() {
        let target = hospital_target(120, 0.2, 7);
        let cfg = LoadConfig {
            id: "t".to_string(),
            stop: StopRule::Ops(400),
            mode: Mode::Closed { threads: 2, think: Duration::ZERO },
            slow_match: None,
            ..LoadConfig::default()
        };
        let summary = run_load(&target, &cfg);
        assert_eq!(summary.total_ops, 400);
        assert_eq!(summary.per_op.iter().map(|o| o.ops).sum::<u64>(), 400);
        assert_eq!(summary.per_op.len(), 4, "all four kinds ran: {:?}", summary.per_op);
        for op in &summary.per_op {
            let s = &op.latency;
            assert!(s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.p99 && s.p999 <= s.max);
        }
        assert!(!summary.windows.is_empty());
        assert_eq!(summary.windows.iter().map(|w| w.ops).sum::<u64>(), 400);
        let text = summary.render_text();
        assert!(text.contains("validate"), "{text}");
        assert!(text.contains("ops/s"), "{text}");
    }

    #[test]
    fn open_loop_latency_is_measured_from_schedule() {
        // A deliberately slow target (1 ms per op) at 10× the rate it can
        // sustain: coordinated-omission-corrected latency must grow well
        // past the service time, because it includes queueing delay.
        struct Slow;
        impl Target for Slow {
            fn run(&self, _op: &Operation) -> OpOutcome {
                std::thread::sleep(Duration::from_millis(1));
                OpOutcome { ok: true, work: 0 }
            }
        }
        let cfg = LoadConfig {
            id: "slow".to_string(),
            mode: Mode::Open { threads: 1, rate: 10_000.0 },
            stop: StopRule::Ops(50),
            slow_match: None,
            ..LoadConfig::default()
        };
        let summary = run_load(&Slow, &cfg);
        assert_eq!(summary.total_ops, 50);
        // Op 50 was due at 5 ms but runs ~50 ms in: its recorded latency
        // is dominated by the backlog, so max ≫ the 1 ms service time.
        assert!(
            summary.overall.max > 10_000_000,
            "coordinated omission not corrected: max {}ns",
            summary.overall.max
        );
    }

    #[test]
    fn slow_match_perturbs_only_matching_ops() {
        let target = hospital_target(60, 0.1, 9);
        let base_cfg = LoadConfig {
            id: "s".to_string(),
            stop: StopRule::Ops(300),
            mix: MixSpec::parse("validate=1").unwrap(),
            slow_match: None,
            ..LoadConfig::default()
        };
        let baseline = run_load(&target, &base_cfg);
        let slowed = run_load(
            &target,
            &LoadConfig { slow_match: Some("load/s/validate".to_string()), ..base_cfg.clone() },
        );
        // Each op runs twice: the mean must move well beyond noise.
        let (b, s) = (baseline.overall.mean, slowed.overall.mean);
        assert!(s > b * 1.5, "slow-match did not slow: {b} -> {s}");
    }

    #[test]
    fn bench_lines_carry_schema_and_gate_fields() {
        let target = hospital_target(50, 0.1, 3);
        let cfg = LoadConfig {
            id: "hosp".to_string(),
            stop: StopRule::Ops(120),
            slow_match: None,
            ..LoadConfig::default()
        };
        let summary = run_load(&target, &cfg);
        let lines = chc_obs::json::parse_lines(&summary.to_bench_lines()).unwrap();
        assert!(lines.len() >= 2);
        for line in &lines {
            assert_eq!(line.get("type").and_then(|v| v.as_str()), Some("bench"));
            assert_eq!(line.get("schema").and_then(|v| v.as_str()), Some("chc-load/1"));
            for key in ["id", "median_ns", "min_ns", "max_ns", "samples", "iters", "p999_ns"] {
                assert!(line.get(key).is_some(), "missing {key}: {}", line.render());
            }
        }
        let all = lines
            .iter()
            .find(|l| l.get("id").and_then(|v| v.as_str()) == Some("load/hosp/all"))
            .expect("aggregate line");
        assert_eq!(all.get("samples").and_then(|v| v.as_f64()), Some(120.0));
    }

    #[test]
    fn epsilon_biases_inserts_toward_excused_classes() {
        // Pure-insert run at ε=1: every insert that *can* pick an excused
        // class does. The hospital schema's excused pool is non-empty.
        let target = hospital_target(30, 1.0, 5);
        assert!(!target.excused_recipes.is_empty());
        let cfg = LoadConfig {
            id: "e".to_string(),
            mix: MixSpec::parse("insert=1").unwrap(),
            stop: StopRule::Ops(200),
            slow_match: None,
            ..LoadConfig::default()
        };
        let before = target.shared.read().unwrap().store.num_objects();
        let summary = run_load(&target, &cfg);
        assert_eq!(summary.total_ops, 200);
        let state = target.shared.read().unwrap();
        assert_eq!(state.store.num_objects(), before + 200);
        let schema = &target.v.schema;
        let excused_classes: Vec<ClassId> = target
            .excused_recipes
            .iter()
            .map(|&i| target.recipes[i].class)
            .collect();
        let new_excused = state
            .objects
            .iter()
            .rev()
            .take(200)
            .filter(|&&o| {
                state
                    .store
                    .classes_of(o)
                    .iter()
                    .any(|c| excused_classes.contains(c))
            })
            .count();
        assert_eq!(new_excused, 200, "ε=1 inserts all hit the excused pool");
        drop(state);
        // schema borrow kept alive for clarity of the assertion above
        let _ = schema;
    }
}
