//! Generic, type-directed instance population.
//!
//! Given any checker-clean schema over token-valued attributes (e.g. the
//! output of [`crate::randhier::generate`]), this populator creates
//! objects and fills every applicable attribute with a value drawn from
//! the *effective conditional type* computed by `chc-types` under total
//! membership knowledge — dogfooding the type system as a data generator.
//! By construction every generated object validates under the Correct
//! semantics, which the tests assert.

use chc_extent::ExtentStore;
use chc_model::{ClassId, Oid, Schema, Value};
use chc_types::{Atom, EntityFacts, TypeContext};

use crate::rng::SplitMix64;

/// Population parameters.
#[derive(Debug, Clone)]
pub struct PopulateParams {
    /// Objects to create per class.
    pub per_class: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PopulateParams {
    fn default() -> Self {
        PopulateParams { per_class: 10, seed: 7 }
    }
}

/// Creates `per_class` objects for every non-virtual class and fills their
/// token-valued attributes with admissible values. Attributes whose
/// effective type is empty or non-token are left unset.
pub fn populate(schema: &Schema, params: &PopulateParams) -> (ExtentStore, Vec<Oid>) {
    let mut rng = SplitMix64::new(params.seed);
    let ctx = TypeContext::new(schema);
    let mut store = ExtentStore::new(schema);
    let mut all = Vec::new();
    for class in schema.class_ids() {
        if schema.class(class).is_virtual() {
            continue;
        }
        for _ in 0..params.per_class {
            let oid = store.create(schema, &[class]);
            fill_attrs(schema, &ctx, &mut store, &mut rng, oid, class);
            all.push(oid);
        }
    }
    (store, all)
}

fn fill_attrs(
    schema: &Schema,
    ctx: &TypeContext<'_>,
    store: &mut ExtentStore,
    rng: &mut SplitMix64,
    oid: Oid,
    class: ClassId,
) {
    // Total knowledge: member of exactly the ancestor closure of `class`.
    let mut facts = EntityFacts::of_class(schema, class);
    for other in schema.class_ids() {
        if !facts.known_in(other) {
            facts.assume_not_in(schema, other);
        }
    }
    for attr in schema.applicable_attrs(class) {
        let Some(ty) = ctx.attr_type(&facts, attr) else { continue };
        // Prefer concrete tokens; fall back to absence; skip otherwise.
        let mut tokens = Vec::new();
        let mut absent_ok = false;
        for atom in &ty.atoms {
            match atom {
                Atom::Enum(set) => tokens.extend(set.iter().copied()),
                Atom::Absent => absent_ok = true,
                Atom::Int(lo, hi) => {
                    let v = rng.gen_range_i64(*lo, *hi);
                    store.set_attr(oid, attr, Value::Int(v));
                    tokens.clear();
                    absent_ok = false;
                    break;
                }
                _ => {}
            }
        }
        if let Some(tok) = rng.choose(&tokens) {
            store.set_attr(oid, attr, Value::Tok(*tok));
        } else if absent_ok {
            // Leave unset: Absent is the admissible value.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::randhier::{generate, HierarchyParams};
    use chc_core::{MissingPolicy, Semantics, ValidationOptions};
    use chc_extent::validate_stored;

    #[test]
    fn populated_objects_validate() {
        let gen = generate(&HierarchyParams { classes: 50, ..Default::default() });
        let (store, objects) = populate(&gen.schema, &PopulateParams::default());
        assert_eq!(objects.len(), 50 * 10);
        let opts = ValidationOptions {
            semantics: Semantics::Correct,
            // Attributes with empty effective types stay unset; skip them.
            missing: MissingPolicy::Vacuous,
        };
        let invalid = objects
            .iter()
            .filter(|&&o| !validate_stored(&gen.schema, &store, opts, o).is_empty())
            .count();
        assert_eq!(invalid, 0);
    }

    #[test]
    fn population_is_deterministic() {
        let gen = generate(&HierarchyParams { classes: 20, ..Default::default() });
        let (s1, o1) = populate(&gen.schema, &PopulateParams::default());
        let (s2, o2) = populate(&gen.schema, &PopulateParams::default());
        assert_eq!(o1, o2);
        for &o in &o1 {
            for attr in &gen.attr_syms {
                assert_eq!(s1.get_attr(o, *attr), s2.get_attr(o, *attr));
            }
        }
    }

    #[test]
    fn vignette_population_validates_strictly() {
        // On the Nixon schema the populator must pick Dove for pure
        // Quakers, Hawk for pure Republicans, etc.
        let schema = crate::vignettes::compiled(crate::vignettes::NIXON);
        let (store, objects) = populate(&schema, &PopulateParams { per_class: 25, seed: 3 });
        let opts = ValidationOptions {
            semantics: Semantics::Correct,
            missing: MissingPolicy::Absent,
        };
        for &o in &objects {
            assert!(validate_stored(&schema, &store, opts, o).is_empty());
        }
        let quaker = schema.class_by_name("Quaker").unwrap();
        let dove = schema.sym("Dove").unwrap();
        let opinion = schema.sym("opinion").unwrap();
        for o in store.extent(quaker) {
            assert_eq!(store.get_attr(o, opinion), Some(&Value::Tok(dove)));
        }
    }
}
