//! # chc-workloads — deterministic workload generators
//!
//! * [`vignettes`] — the paper's worked examples as compilable SDL.
//! * [`hospital`] — a populated hospital database with a controllable
//!   exceptional fraction (substrate for experiments E4 and E6).
//! * [`randhier`] — random checker-clean hierarchies plus fault seeding
//!   (experiments E1, E3, E8).
//! * [`populate()`] — type-directed generic instance population.
//! * [`rng`] — the dependency-free seeded PRNG behind all of the above.
//! * [`driver`] — a closed/open-loop load harness over a [`driver::Target`]
//!   (latency percentiles, throughput time-series, HTML report).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod driver;
pub mod hospital;
pub mod populate;
pub mod randhier;
pub mod rng;
pub mod vignettes;

pub use driver::{
    hospital_target, parse_duration, run_load, LibraryTarget, LoadConfig, LoadSummary, MemUsage,
    MixSpec, Mode, OpGenerator, OpKind, OpOutcome, Operation, StopRule, Target, TargetOptions,
};
pub use hospital::{build as build_hospital, HospitalDb, HospitalIds, HospitalParams};
pub use populate::{populate, PopulateParams};
pub use randhier::{
    detection_score, generate, seed_contradictions, single_class_edit, GeneratedHierarchy,
    HierarchyParams, SeededFault,
};
