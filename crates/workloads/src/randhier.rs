//! Random class-hierarchy generation for the scaling experiments.
//!
//! The generator produces schemas that *pass the excuses checker* (every
//! contradiction intentionally excused), with tunable size, fan-in,
//! redefinition rate, and contradiction rate. A companion mutator,
//! [`seed_contradictions`], then removes excuses at known sites so
//! experiment E1 can measure the checker's detection precision/recall.

use chc_core::{check, DiagKind, Severity};
use chc_model::{
    AttrSpec, ClassId, Range, Schema, SchemaBuilder, Sym,
};

use crate::rng::SplitMix64;

/// Parameters for [`generate`].
#[derive(Debug, Clone)]
pub struct HierarchyParams {
    /// Number of classes.
    pub classes: usize,
    /// Maximum direct superclasses per class (≥1 ⇒ DAGs possible).
    pub max_supers: usize,
    /// Number of distinct root attributes introduced across the schema.
    pub attrs: usize,
    /// Number of enumeration tokens shared by all attribute ranges.
    pub tokens: usize,
    /// Probability that a class redefines an inherited attribute.
    pub redefine_rate: f64,
    /// Probability that a redefinition *contradicts* (and therefore
    /// excuses) rather than properly specializes.
    pub contradiction_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HierarchyParams {
    fn default() -> Self {
        HierarchyParams {
            classes: 100,
            max_supers: 2,
            attrs: 8,
            tokens: 8,
            redefine_rate: 0.4,
            contradiction_rate: 0.3,
            seed: 0xC1A55,
        }
    }
}

/// A generated hierarchy plus its bookkeeping.
#[derive(Debug, Clone)]
pub struct GeneratedHierarchy {
    /// The checker-clean schema.
    pub schema: Schema,
    /// Sites `(class, attr)` whose declaration carries at least one excuse
    /// (candidates for mutation).
    pub excused_sites: Vec<(ClassId, Sym)>,
    /// The shared attribute symbols.
    pub attr_syms: Vec<Sym>,
    /// The shared token symbols.
    pub token_syms: Vec<Sym>,
}

/// Generates a checker-clean random hierarchy.
pub fn generate(params: &HierarchyParams) -> GeneratedHierarchy {
    let mut rng = SplitMix64::new(params.seed);
    let mut b = SchemaBuilder::new();
    let tokens: Vec<Sym> = (0..params.tokens)
        .map(|i| b.intern(&format!("tok{i}")))
        .collect();
    let attr_names: Vec<String> = (0..params.attrs).map(|i| format!("attr{i}")).collect();
    let attr_syms: Vec<Sym> = attr_names.iter().map(|n| b.intern(n)).collect();

    // Track, per class, the full set of (declarer, attr, range) constraints
    // it inherits, so redefinitions can compute subsets / contradictions
    // and excuse correctly. We reconstruct from a shadow structure rather
    // than rebuilding the schema per class.
    #[derive(Clone)]
    struct Shadow {
        /// attr index → (declaring shadow index, range) — all constraints.
        constraints: Vec<Vec<(usize, Range)>>,
    }
    let mut shadows: Vec<Shadow> = Vec::with_capacity(params.classes);
    let mut ids: Vec<ClassId> = Vec::with_capacity(params.classes);
    let mut excused_sites = Vec::new();

    for ci in 0..params.classes {
        let id = b.declare(&format!("C{ci}")).unwrap();
        ids.push(id);
        let n_supers = if ci == 0 { 0 } else { rng.gen_range(1, params.max_supers.min(ci)) };
        let mut supers: Vec<usize> = (0..ci).collect();
        rng.shuffle(&mut supers);
        supers.truncate(n_supers);
        for &s in &supers {
            b.add_super(id, ids[s]).unwrap();
        }
        // Inherited constraints: union over supers.
        let mut constraints: Vec<Vec<(usize, Range)>> = vec![Vec::new(); params.attrs];
        for &s in &supers {
            for (ai, cs) in shadows[s].constraints.iter().enumerate() {
                for c in cs {
                    if !constraints[ai].contains(c) {
                        constraints[ai].push(c.clone());
                    }
                }
            }
        }

        for ai in 0..params.attrs {
            let inherited = constraints[ai].clone();
            if inherited.is_empty() {
                // Root introduction of this attribute, with modest
                // probability so attributes spread through the hierarchy.
                if rng.gen_bool(0.3) {
                    let range = random_enum(&mut rng, &tokens, params.tokens);
                    b.add_attr(id, &attr_names[ai], AttrSpec::plain(range.clone())).unwrap();
                    constraints[ai].push((ci, range));
                }
                continue;
            }
            // A class inheriting constraints with an empty k-way meet from
            // its lineages *must* adjudicate (else the checker rightly
            // rejects the schema as unsatisfiable) — the Quaker/Republican
            // shape and its k-way generalizations.
            let must_redefine = inherited.len() >= 2 && enum_meet(&inherited).is_none();
            if !must_redefine && !rng.gen_bool(params.redefine_rate) {
                continue;
            }
            let contradict = must_redefine || rng.gen_bool(params.contradiction_rate);
            let range = if contradict {
                random_enum(&mut rng, &tokens, params.tokens)
            } else {
                // Proper specialization: a nonempty subset of the meet of
                // inherited ranges (fall back to contradiction if empty).
                match enum_meet(&inherited) {
                    Some(meet) => subset_of(&mut rng, &meet),
                    None => random_enum(&mut rng, &tokens, params.tokens),
                }
            };
            let mut spec = AttrSpec::plain(range.clone());
            // Excuse every inherited constraint the new range escapes.
            let mut excused_any = false;
            for (declarer, dr) in &inherited {
                if !dr.subsumes_enum(&range) {
                    spec = spec.excusing(attr_syms[ai], ids[*declarer]);
                    excused_any = true;
                }
            }
            b.add_attr(id, &attr_names[ai], spec).unwrap();
            if excused_any {
                excused_sites.push((id, attr_syms[ai]));
            }
            constraints[ai].push((ci, range));
        }
        shadows.push(Shadow { constraints });
    }

    let schema = b.build().expect("generator produces structurally valid schemas");
    debug_assert!(
        check(&schema).is_ok(),
        "generator must produce checker-clean schemas"
    );
    GeneratedHierarchy { schema, excused_sites, attr_syms, token_syms: tokens }
}

/// Enum-range helpers (the generator works purely over token sets).
trait EnumRange {
    fn subsumes_enum(&self, other: &Range) -> bool;
}

impl EnumRange for Range {
    fn subsumes_enum(&self, other: &Range) -> bool {
        match (self, other) {
            (Range::Enum(a), Range::Enum(b)) => b.is_subset(a),
            _ => false,
        }
    }
}

fn random_enum(rng: &mut SplitMix64, tokens: &[Sym], universe: usize) -> Range {
    let size = rng.gen_range(1, universe.max(1));
    let mut picked: Vec<Sym> = tokens.to_vec();
    rng.shuffle(&mut picked);
    picked.truncate(size);
    Range::enumeration(picked).expect("nonempty")
}

fn enum_meet(constraints: &[(usize, Range)]) -> Option<Vec<Sym>> {
    let mut iter = constraints.iter().map(|(_, r)| match r {
        Range::Enum(s) => s.clone(),
        _ => unreachable!("generator only emits enum ranges"),
    });
    let mut acc = iter.next()?;
    for s in iter {
        acc = acc.intersection(&s).copied().collect();
    }
    (!acc.is_empty()).then(|| acc.into_iter().collect())
}

fn subset_of(rng: &mut SplitMix64, meet: &[Sym]) -> Range {
    let size = rng.gen_range(1, meet.len());
    let mut picked = meet.to_vec();
    rng.shuffle(&mut picked);
    picked.truncate(size);
    Range::enumeration(picked).expect("nonempty")
}

/// Applies one semantic edit to a generated hierarchy — the evolution
/// workload behind `chc diff` and `chc check --incremental`: the
/// declared enum range at one excused site is narrowed to half its
/// tokens, keeping its excuse clauses intact. The result differs from
/// the original by exactly one range edit, so the diff's impact cone is
/// the edited class's subtree and incremental re-checking touches only
/// that cone. `pick` selects the site (wrapping), deterministically.
pub fn single_class_edit(
    gen: &GeneratedHierarchy,
    pick: usize,
) -> (Schema, (ClassId, Sym)) {
    // Prefer sites whose range has at least two tokens, so halving it is
    // a real narrowing and the differ classifies the edit as an edit;
    // order them by subtree size so low `pick` values select edits whose
    // impact cone is small relative to the schema (the point of the
    // incremental workload).
    let mut wide: Vec<(usize, ClassId, Sym)> = gen
        .excused_sites
        .iter()
        .copied()
        .filter(|&(c, a)| {
            matches!(
                &gen.schema.declared_attr(c, a).expect("site exists").spec.range,
                Range::Enum(s) if s.len() >= 2
            )
        })
        .map(|(c, a)| (gen.schema.descendants_with_self(c).count(), c, a))
        .collect();
    wide.sort_by_key(|&(cone, c, a)| (cone, c, a));
    let sites: Vec<(ClassId, Sym)> = if wide.is_empty() {
        gen.excused_sites.clone()
    } else {
        wide.into_iter().map(|(_, c, a)| (c, a)).collect()
    };
    assert!(!sites.is_empty(), "hierarchy has no excused site to edit");
    let (class, attr) = sites[pick % sites.len()];
    let mut b = SchemaBuilder::from_schema(&gen.schema);
    let mut spec = b.attr_spec(class, attr).expect("site exists").clone();
    if let Range::Enum(toks) = &spec.range {
        let keep: Vec<Sym> = toks.iter().copied().take(toks.len().div_ceil(2)).collect();
        spec.range = Range::enumeration(keep).expect("nonempty");
    }
    b.set_attr_spec(class, attr, spec).unwrap();
    (b.build().expect("edit preserves structure"), (class, attr))
}

/// A mutation that removed one excuse, making the contradiction at
/// `(class, attr)` unexcused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeededFault {
    /// The declaring class whose excuse was dropped.
    pub class: ClassId,
    /// The attribute.
    pub attr: Sym,
}

/// Removes the excuses from `count` randomly chosen excused sites,
/// returning the mutated schema and the ground-truth fault list. The
/// checker's E1 score is precision/recall of its error reports against
/// this list.
pub fn seed_contradictions(
    gen: &GeneratedHierarchy,
    count: usize,
    seed: u64,
) -> (Schema, Vec<SeededFault>) {
    let mut rng = SplitMix64::new(seed);
    // A site only qualifies as a *fault* if removing its excuses leaves
    // some contradicted constraint genuinely uncovered — if another
    // applicable excuser would still cover the range, the schema stays
    // correct and there is nothing to detect.
    let mut sites: Vec<(ClassId, Sym)> = gen
        .excused_sites
        .iter()
        .copied()
        .filter(|&(class, attr)| {
            let s_range = &gen.schema.declared_attr(class, attr).expect("site").spec.range;
            gen.schema.strict_ancestors(class).any(|b| {
                let Some(decl) = gen.schema.declared_attr(b, attr) else {
                    return false;
                };
                if decl.spec.range.subsumes(&gen.schema, s_range) {
                    return false;
                }
                // Contradicted; is any *other* excuser still covering?
                !gen.schema.excusers_of(b, attr).iter().any(|e| {
                    e.excuser != class
                        && gen.schema.is_subclass(class, e.excuser)
                        && gen
                            .schema
                            .excuser_spec(e)
                            .range
                            .subsumes(&gen.schema, s_range)
                })
            })
        })
        .collect();
    rng.shuffle(&mut sites);
    sites.truncate(count);
    let mut b = SchemaBuilder::from_schema(&gen.schema);
    let mut faults = Vec::new();
    for (class, attr) in sites {
        let spec = b.attr_spec(class, attr).expect("site exists").clone();
        b.set_attr_spec(class, attr, AttrSpec::plain(spec.range)).unwrap();
        faults.push(SeededFault { class, attr });
    }
    (b.build().expect("mutation preserves structure"), faults)
}

/// Scores the checker against a seeded-fault ground truth: a fault counts
/// as detected if any error diagnostic lands on its `(class, attr)` site.
pub fn detection_score(schema: &Schema, faults: &[SeededFault]) -> (f64, f64) {
    let report = check(schema);
    let error_sites: Vec<(ClassId, Sym)> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .filter(|d| {
            matches!(
                d.kind,
                DiagKind::UnexcusedContradiction { .. }
                    | DiagKind::ExcuseRangeEscape { .. }
                    | DiagKind::IncompatibleParents { .. }
                    | DiagKind::JointlyUnsatisfiable { .. }
            )
        })
        .map(|d| (d.class, d.attr))
        .collect();
    if faults.is_empty() {
        return (1.0, 1.0);
    }
    let detected = faults
        .iter()
        .filter(|f| error_sites.iter().any(|(c, a)| *c == f.class && *a == f.attr))
        .count();
    let recall = detected as f64 / faults.len() as f64;
    // Precision: errors at non-fault sites are false positives *unless*
    // they are knock-on effects at descendants of a fault site (removing
    // an excuse legitimately breaks subclasses that relied on it).
    let false_pos = error_sites
        .iter()
        .filter(|(c, a)| {
            !faults.iter().any(|f| f.attr == *a && schema.is_subclass(*c, f.class))
        })
        .count();
    let precision = if error_sites.is_empty() {
        1.0
    } else {
        1.0 - false_pos as f64 / error_sites.len() as f64
    };
    (precision, recall)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_schemas_are_checker_clean() {
        for seed in 0..5 {
            let gen = generate(&HierarchyParams { seed, classes: 60, ..Default::default() });
            let report = check(&gen.schema);
            assert!(report.is_ok(), "seed {seed}: {}", report.render(&gen.schema));
            assert_eq!(gen.schema.num_classes(), 60);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = HierarchyParams::default();
        let a = generate(&p);
        let c = generate(&p);
        assert_eq!(a.schema.num_classes(), c.schema.num_classes());
        assert_eq!(a.excused_sites, c.excused_sites);
        assert_eq!(
            chc_sdl::print_schema(&a.schema),
            chc_sdl::print_schema(&c.schema)
        );
    }

    #[test]
    fn hierarchies_contain_excused_contradictions() {
        let gen = generate(&HierarchyParams { classes: 200, ..Default::default() });
        assert!(
            gen.excused_sites.len() > 5,
            "only {} excused sites generated",
            gen.excused_sites.len()
        );
    }

    #[test]
    fn seeded_faults_are_detected_with_full_recall() {
        let gen = generate(&HierarchyParams { classes: 150, ..Default::default() });
        let n = gen.excused_sites.len().min(10);
        let (mutated, faults) = seed_contradictions(&gen, n, 42);
        assert_eq!(faults.len(), n);
        assert!(!check(&mutated).is_ok());
        let (precision, recall) = detection_score(&mutated, &faults);
        assert_eq!(recall, 1.0, "checker must find every seeded fault");
        assert_eq!(precision, 1.0, "checker must not cry wolf");
    }

    #[test]
    fn single_class_edit_narrows_one_site_deterministically() {
        let gen = generate(&HierarchyParams::default());
        let (evolved, (class, attr)) = single_class_edit(&gen, 0);
        let old_r = &gen.schema.declared_attr(class, attr).unwrap().spec.range;
        let new_r = &evolved.declared_attr(class, attr).unwrap().spec.range;
        assert!(old_r.subsumes(&gen.schema, new_r) && old_r != new_r, "a strict narrowing");
        assert_eq!(
            gen.schema.declared_attr(class, attr).unwrap().spec.excuses,
            evolved.declared_attr(class, attr).unwrap().spec.excuses,
            "the excuse clauses survive the edit"
        );
        let (again, site) = single_class_edit(&gen, 0);
        assert_eq!(site, (class, attr));
        assert_eq!(chc_sdl::print_schema(&evolved), chc_sdl::print_schema(&again));
        // A different pick edits a different site.
        let (_, other) = single_class_edit(&gen, 1);
        assert_ne!(other, (class, attr));
    }

    #[test]
    fn zero_faults_scores_perfectly() {
        let gen = generate(&HierarchyParams::default());
        let (schema, faults) = seed_contradictions(&gen, 0, 1);
        assert!(check(&schema).is_ok());
        assert_eq!(detection_score(&schema, &faults), (1.0, 1.0));
    }

    #[test]
    fn deeper_hierarchies_via_single_supers() {
        let gen = generate(&HierarchyParams {
            classes: 40,
            max_supers: 1,
            ..Default::default()
        });
        // A pure tree: every class except the root has exactly one parent.
        for c in gen.schema.class_ids() {
            assert!(gen.schema.supers(c).len() <= 1);
        }
    }
}
