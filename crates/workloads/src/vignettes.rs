//! The paper's worked examples, as ready-to-compile SDL sources.
//!
//! Each constant is the schema exactly as the paper motivates it; the
//! `*_compiled` helpers return checked schemas. Experiment E7 runs the
//! §5.2 semantics ladder over these.

use chc_core::check;
use chc_model::Schema;
use chc_sdl::compile;

/// Figure 1 of the paper: addresses, persons, employees.
pub const FIGURE_ONE: &str = "
class Address with
    street: String;
    city: String;
    state: {'AL, 'NJ, 'NY, 'WV};
class Person with
    name: String;
    age: 1..120;
    home: Address;
class Employee is-a Person with
    age: 16..65;
    supervisor: Employee;
    office: Address;
";

/// §3's hospital Information System, extended with §4/§5's exceptional
/// subclasses and their excuses.
pub const HOSPITAL: &str = "
class Address with
    street: String;
    city: String;
    state: {'AL, 'NJ, 'NY, 'WV};
class Hospital with
    accreditation: {'Local, 'State, 'Federal};
    location: Address;
class Person with
    name: String;
    age: 1..120;
class Health_Professional is-a Person;
class Physician is-a Health_Professional with
    affiliatedWith: Hospital;
class Oncologist is-a Physician;
class Psychologist is-a Health_Professional;
class Drug;
class Ward;
class Patient is-a Person with
    treatedBy: Physician;
    treatedAt: Hospital;
    ward: Ward;
class Cancer_Patient is-a Patient with
    treatedBy: Oncologist;
    chemoTherapy: Drug;
class Alcoholic is-a Patient with
    treatedBy: Psychologist excuses treatedBy on Patient;
class Ambulatory_Patient is-a Patient with
    ward: None excuses ward on Patient;
class Tubercular_Patient is-a Patient with
    treatedAt: Hospital [
        accreditation: None excuses accreditation on Hospital;
        location: Address [
            state: None excuses state on Address;
            country: {'Switzerland}
        ]
    ];
";

/// §4.1/§5.1's multiple-membership example: renal failure predicts high
/// blood pressure, hemorrhage predicts (and overrides with) low.
pub const BLOOD_PRESSURE: &str = "
class Patient;
class Renal_Failure_Patient is-a Patient with
    bloodPressure: 140..220;
class Hemorrhaging_Patient is-a Patient with
    bloodPressure: 50..90 excuses bloodPressure on Renal_Failure_Patient;
";

/// The Quaker/Republican diamond with the paper's mutual excuses: "we do
/// not wish to favor either opinion."
pub const NIXON: &str = "
class Person with
    opinion: {'Hawk, 'Dove, 'Ostrich};
class Quaker is-a Person with
    opinion: {'Dove} excuses opinion on Republican;
class Republican is-a Person with
    opinion: {'Hawk} excuses opinion on Quaker;
";

/// AI's flying-birds example, phrased with excuses.
pub const BIRDS: &str = "
class Bird with
    locomotion: {'Flies};
class Penguin is-a Bird with
    locomotion: {'Swims} excuses locomotion on Bird;
class Ostrich is-a Bird with
    locomotion: {'Runs} excuses locomotion on Bird;
class Sparrow is-a Bird;
";

/// §5.4's temporary employees: "temporary employees get lump sum payments,
/// and do not have (monthly) salaries."
pub const TEMPORARY_EMPLOYEES: &str = "
class Employee with
    salary: Integer;
class Temporary_Employee is-a Employee with
    salary: None excuses salary on Employee;
    lumpSum: Integer;
";

/// Compiles and checker-verifies one of the vignette sources.
pub fn compiled(src: &str) -> Schema {
    let schema = compile(src).unwrap_or_else(|e| panic!("vignette must compile: {e}"));
    let report = check(&schema);
    assert!(report.is_ok(), "vignette must be checker-clean: {}", report.render(&schema));
    schema
}

/// All vignettes with display names, for table-driven experiments.
pub fn all() -> Vec<(&'static str, &'static str)> {
    vec![
        ("figure-1", FIGURE_ONE),
        ("hospital", HOSPITAL),
        ("blood-pressure", BLOOD_PRESSURE),
        ("nixon", NIXON),
        ("birds", BIRDS),
        ("temporary-employees", TEMPORARY_EMPLOYEES),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_vignette_compiles_and_checks() {
        for (name, src) in all() {
            let schema = compiled(src);
            assert!(schema.num_classes() > 0, "{name}");
        }
    }

    #[test]
    fn hospital_has_the_expected_shape() {
        let s = compiled(HOSPITAL);
        let patient = s.class_by_name("Patient").unwrap();
        let alcoholic = s.class_by_name("Alcoholic").unwrap();
        let cancer = s.class_by_name("Cancer_Patient").unwrap();
        assert!(s.is_strict_subclass(alcoholic, patient));
        assert!(s.is_strict_subclass(cancer, patient));
        let treated_by = s.sym("treatedBy").unwrap();
        assert_eq!(s.excusers_of(patient, treated_by).len(), 1);
        // Cancer_Patient's Oncologist range is a *proper* specialization —
        // no excuse, no warning.
        let report = check(&s);
        assert_eq!(report.warnings().count(), 0);
    }

    #[test]
    fn nixon_diamond_can_be_extended_with_a_member_class() {
        // A class for people who are both, as the semantics §5.2 demands,
        // is accepted thanks to the mutual excuses.
        let src = format!("{NIXON}\nclass Quaker_Republican is-a Quaker, Republican;");
        let schema = compile(&src).unwrap();
        assert!(check(&schema).is_ok());
    }

    #[test]
    fn virtualized_hospital_checks_clean() {
        let s = compiled(HOSPITAL);
        let v = chc_core::virtualize(&s).unwrap();
        assert!(check(&v.schema).is_ok());
        assert_eq!(v.virtuals.len(), 2);
    }
}
