//! A small, deterministic, dependency-free PRNG.
//!
//! The experiment generators must be reproducible byte-for-byte across
//! runs and build environments, and the build environment is offline —
//! so instead of the `rand` crate the workloads use SplitMix64 (Steele,
//! Lea & Flood 2014), a 64-bit mixing generator that passes BigCrush,
//! needs eight bytes of state, and is trivially seedable.

/// A SplitMix64 generator.
///
/// ```
/// use chc_workloads::rng::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)` (53 bits of precision).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform integer in `[lo, hi]` (inclusive). Panics if `lo > hi`.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        // Multiply-shift rejection-free mapping; the tiny modulo bias is
        // irrelevant for workload generation (span ≪ 2^64).
        let r = (self.next_u64() as u128 * span) >> 64;
        (lo as i128 + r as i128) as i64
    }

    /// A uniform `usize` in `[lo, hi]` (inclusive).
    pub fn gen_range(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range_i64(lo as i64, hi as i64) as usize
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0, i);
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(0, slice.len() - 1)])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_inclusive_and_covering() {
        let mut rng = SplitMix64::new(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.gen_range(0, 4);
            assert!(v <= 4);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in a small range hit");
        for _ in 0..100 {
            let v = rng.gen_range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SplitMix64::new(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.03, "{hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SplitMix64::new(3);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle is not the identity");
    }

    #[test]
    fn choose_is_none_only_on_empty() {
        let mut rng = SplitMix64::new(4);
        assert_eq!(rng.choose::<u8>(&[]), None);
        assert!(rng.choose(&[1, 2, 3]).is_some());
    }
}
