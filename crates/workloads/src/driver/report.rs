//! Self-contained HTML report for a load run.
//!
//! One file, zero dependencies at render *and* at view time: inline CSS,
//! inline SVG charts, no JavaScript, no external fonts — the report can
//! be attached to a CI run or mailed around and still render identically
//! (the wasmer-borealis `report.html.jinja` exemplar sets the style:
//! a setup table, a summary, striped result tables).
//!
//! Anatomy (documented in docs/OBSERVABILITY.md):
//! 1. header: run id, date-free provenance (mode, mix, seed, elapsed);
//! 2. summary tiles: total ops, throughput, overall p50/p95/p99/p99.9;
//! 3. experimental-setup table: target-provided `(setting, value)` rows;
//! 4. per-op latency table: min/p50/p95/p99/p99.9/max/mean per kind;
//! 5. time-series: throughput and p95 per window as SVG charts, so
//!    warmup ramps and degradation are visible at a glance.

use std::fmt::Write as _;

use super::{fmt_ns, LoadSummary};

/// Escapes text for HTML body and attribute positions.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

const CSS: &str = r#"
    body { margin: 1.5em; font-family: Arial, Helvetica, sans-serif; color: #1a1a2e; }
    h1 { font-size: 1.5em; } h2 { font-size: 1.15em; margin-top: 1.6em; }
    .subtitle { color: #555; margin-top: -0.6em; }
    code { font-family: ui-monospace, Menlo, Consolas, monospace; background: #f4f4f8; padding: 1px 4px; border-radius: 3px; }
    table { border-collapse: collapse; width: 100%; margin: 0.8em 0; }
    table td, table th { border: 1px solid #ddd; padding: 7px 10px; text-align: left; }
    table tr:nth-child(even) { background-color: #f7f7fa; }
    table tr:hover { background-color: #eef2f5; }
    table.experimental-setup thead tr { background-color: #04AA6D; color: white; }
    table.summary thead tr { background-color: rgb(70, 162, 188); color: white; }
    table.summary td.num, table.experimental-setup td.num { text-align: right; font-variant-numeric: tabular-nums; }
    .tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 1em 0; }
    .tile { border: 1px solid #ddd; border-radius: 6px; padding: 10px 16px; min-width: 110px; background: #fafafc; }
    .tile .value { font-size: 1.45em; font-weight: bold; font-variant-numeric: tabular-nums; }
    .tile .label { color: #666; font-size: 0.8em; text-transform: uppercase; letter-spacing: 0.04em; }
    .chart { margin: 0.5em 0 1.5em 0; }
    .chart .caption { color: #555; font-size: 0.85em; margin-top: 2px; }
    svg text { font-family: Arial, Helvetica, sans-serif; }
"#;

/// An inline SVG line chart over per-window values. `fmt` renders axis
/// labels for the y extremes; x spans the run duration.
fn svg_chart(values: &[f64], stroke: &str, fill: &str, fmt: impl Fn(f64) -> String) -> String {
    const W: f64 = 760.0;
    const H: f64 = 120.0;
    const PAD_L: f64 = 70.0;
    const PAD_B: f64 = 4.0;
    const PAD_T: f64 = 6.0;
    if values.is_empty() {
        return "<p><em>no windows recorded</em></p>".to_string();
    }
    let max = values.iter().cloned().fold(0.0f64, f64::max).max(1e-9);
    let plot_w = W - PAD_L - 8.0;
    let plot_h = H - PAD_T - PAD_B;
    let x_of = |i: usize| {
        PAD_L + if values.len() == 1 { plot_w / 2.0 } else { plot_w * i as f64 / (values.len() - 1) as f64 }
    };
    let y_of = |v: f64| PAD_T + plot_h * (1.0 - (v / max).clamp(0.0, 1.0));
    let mut line = String::new();
    for (i, &v) in values.iter().enumerate() {
        let _ = write!(line, "{:.1},{:.1} ", x_of(i), y_of(v));
    }
    // Area under the line, closed along the baseline.
    let area = format!(
        "{}{:.1},{:.1} {:.1},{:.1}",
        line,
        x_of(values.len() - 1),
        PAD_T + plot_h,
        x_of(0),
        PAD_T + plot_h
    );
    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg viewBox="0 0 {W} {H}" width="{W}" height="{H}" role="img">"#
    );
    let _ = write!(
        svg,
        r##"<line x1="{PAD_L}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#ccc" stroke-width="1"/>"##,
        PAD_T + plot_h,
        W - 8.0,
        PAD_T + plot_h
    );
    let _ = write!(
        svg,
        r#"<polygon points="{}" fill="{fill}"/>"#,
        area.trim_end()
    );
    let _ = write!(
        svg,
        r#"<polyline points="{}" fill="none" stroke="{stroke}" stroke-width="1.8"/>"#,
        line.trim_end()
    );
    let _ = write!(
        svg,
        r##"<text x="{:.1}" y="{:.1}" font-size="11" fill="#555" text-anchor="end">{}</text>"##,
        PAD_L - 6.0,
        PAD_T + 10.0,
        escape(&fmt(max))
    );
    let _ = write!(
        svg,
        r##"<text x="{:.1}" y="{:.1}" font-size="11" fill="#555" text-anchor="end">0</text>"##,
        PAD_L - 6.0,
        PAD_T + plot_h
    );
    svg.push_str("</svg>");
    svg
}

/// Renders the full report; write the result to the `--report` path.
pub fn render_html(summary: &LoadSummary) -> String {
    let mut out = String::with_capacity(16 * 1024);
    let _ = write!(
        out,
        "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"UTF-8\" />\n<title>chc load report — {}</title>\n<style>{CSS}</style>\n</head>\n<body>\n",
        escape(&summary.id)
    );
    let _ = write!(
        out,
        "<h1>chc load report — <code>{}</code></h1>\n<p class=\"subtitle\">{} · mix <code>{}</code> · seed {} · {:.2}s elapsed</p>\n",
        escape(&summary.id),
        escape(&summary.mode_desc),
        escape(&summary.mix.render()),
        summary.seed,
        summary.elapsed.as_secs_f64()
    );

    // Summary tiles.
    out.push_str("<section>\n<div class=\"tiles\">\n");
    let mut tiles = vec![
        (format!("{}", summary.total_ops), "operations"),
        (format!("{:.0} /s", summary.throughput()), "throughput"),
        (fmt_ns(summary.overall.p50), "p50 latency"),
        (fmt_ns(summary.overall.p95), "p95 latency"),
        (fmt_ns(summary.overall.p99), "p99 latency"),
        (fmt_ns(summary.overall.p999), "p99.9 latency"),
        (fmt_ns(summary.overall.max), "max latency"),
        (fmt_ns(summary.overall.mean.round() as u64), "mean latency"),
    ];
    if let Some(mem) = &summary.mem {
        tiles.push((super::fmt_bytes(mem.bytes_peak), "peak live memory"));
        tiles.push((super::fmt_bytes(mem.bytes_allocated), "bytes allocated"));
    }
    for (value, label) in tiles {
        let _ = writeln!(
            out,
            "<div class=\"tile\"><div class=\"value\">{}</div><div class=\"label\">{}</div></div>",
            escape(&value),
            label
        );
    }
    out.push_str("</div>\n</section>\n");

    // Experimental setup.
    out.push_str("<section>\n<h2>Experimental setup</h2>\n<table class=\"experimental-setup\">\n<thead><tr><th>Setting</th><th>Value</th></tr></thead>\n<tbody>\n");
    let config_rows = [
        ("mode".to_string(), summary.mode_desc.clone()),
        ("mix".to_string(), summary.mix.render()),
        ("threads".to_string(), summary.threads.to_string()),
        ("seed".to_string(), summary.seed.to_string()),
        ("window".to_string(), format!("{:?}", summary.window)),
    ];
    for (k, v) in config_rows.iter().chain(summary.setup.iter()) {
        let _ = writeln!(
            out,
            "<tr><td>{}</td><td class=\"num\">{}</td></tr>",
            escape(k),
            escape(v)
        );
    }
    out.push_str("</tbody>\n</table>\n</section>\n");

    // Per-op latency table.
    out.push_str("<section>\n<h2>Latency by operation</h2>\n<table class=\"summary\">\n<thead><tr><th>op</th><th>ops</th><th>ok</th><th>fail</th><th>min</th><th>p50</th><th>p95</th><th>p99</th><th>p99.9</th><th>max</th><th>mean</th></tr></thead>\n<tbody>\n");
    let mut rows: Vec<(String, u64, u64, u64, _)> = summary
        .per_op
        .iter()
        .map(|o| (o.kind.name().to_string(), o.ops, o.ok, o.failed, o.latency))
        .collect();
    rows.push((
        "all".to_string(),
        summary.total_ops,
        summary.per_op.iter().map(|o| o.ok).sum(),
        summary.per_op.iter().map(|o| o.failed).sum(),
        summary.overall,
    ));
    for (name, ops, ok, fail, s) in rows {
        let _ = writeln!(
            out,
            "<tr><td><code>{}</code></td><td class=\"num\">{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td></tr>",
            escape(&name),
            ops,
            ok,
            fail,
            fmt_ns(s.min),
            fmt_ns(s.p50),
            fmt_ns(s.p95),
            fmt_ns(s.p99),
            fmt_ns(s.p999),
            fmt_ns(s.max),
            fmt_ns(s.mean as u64),
        );
    }
    out.push_str("</tbody>\n</table>\n</section>\n");

    // Time series.
    let window_s = summary.window.as_secs_f64().max(1e-9);
    let throughput: Vec<f64> = summary.windows.iter().map(|w| w.ops as f64 / window_s).collect();
    let p95: Vec<f64> = summary.windows.iter().map(|w| w.p95_ns as f64).collect();
    out.push_str("<section>\n<h2>Throughput over time</h2>\n<div class=\"chart\">\n");
    out.push_str(&svg_chart(&throughput, "#04AA6D", "rgba(4,170,109,0.12)", |v| {
        format!("{v:.0}/s")
    }));
    let _ = write!(
        out,
        "<div class=\"caption\">operations per second, {} windows of {:?}</div>\n</div>\n",
        summary.windows.len(),
        summary.window
    );
    out.push_str("<h2>p95 latency over time</h2>\n<div class=\"chart\">\n");
    out.push_str(&svg_chart(&p95, "rgb(70,162,188)", "rgba(70,162,188,0.12)", |v| {
        fmt_ns(v as u64)
    }));
    let _ = write!(
        out,
        "<div class=\"caption\">per-window 95th-percentile latency (windows of {:?})</div>\n</div>\n</section>\n",
        summary.window
    );

    out.push_str("<p class=\"subtitle\">generated by <code>chc load</code> — schema <code>chc-load/1</code></p>\n</body>\n</html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::super::{hospital_target, run_load, LoadConfig, Mode, StopRule};
    use super::*;
    use std::time::Duration;

    #[test]
    fn report_is_self_contained_and_complete() {
        let target = hospital_target(60, 0.1, 11);
        let cfg = LoadConfig {
            id: "report-test".to_string(),
            stop: StopRule::Ops(200),
            mode: Mode::Closed { threads: 2, think: Duration::ZERO },
            slow_match: None,
            ..LoadConfig::default()
        };
        let summary = run_load(&target, &cfg);
        let html = render_html(&summary);
        // Self-contained: no external fetches of any kind.
        for banned in ["<script", "http://", "https://", "src=", "@import"] {
            assert!(!html.contains(banned), "report not self-contained: found {banned}");
        }
        // The pieces verify.sh and the acceptance criteria look for.
        for needed in [
            "<!DOCTYPE html>",
            "charset=\"UTF-8\"",
            "table class=\"summary\"",
            "table class=\"experimental-setup\"",
            "<svg",
            "p99.9",
            "report-test",
            "validate",
            "Throughput over time",
        ] {
            assert!(html.contains(needed), "report missing {needed}");
        }
        // Every op kind that ran has a row.
        for op in &summary.per_op {
            assert!(html.contains(&format!("<code>{}</code>", op.kind.name())));
        }
    }

    #[test]
    fn escape_covers_html_metacharacters() {
        assert_eq!(escape("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&#39;");
    }

    #[test]
    fn chart_handles_empty_and_single_point() {
        assert!(svg_chart(&[], "#000", "#fff", |v| format!("{v}")).contains("no windows"));
        let one = svg_chart(&[5.0], "#000", "#fff", |v| format!("{v:.0}"));
        assert!(one.contains("<svg") && one.contains("polyline"));
    }
}
