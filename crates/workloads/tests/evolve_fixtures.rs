//! Guards the committed `fixtures/evolve400-{old,new}.sdl` pair: a
//! 400-class generated hierarchy and the same hierarchy after one
//! [`single_class_edit`]. The pair feeds the `chc diff` /
//! `chc check --incremental` smoke in `scripts/verify.sh` and experiment
//! E16, so it must stay byte-identical to what the generator produces.
//!
//! To regenerate after changing the generator:
//! `cargo test -p chc-workloads --test evolve_fixtures regenerate -- --ignored`

use chc_workloads::{generate, single_class_edit, HierarchyParams};

const OLD: &str = include_str!("../fixtures/evolve400-old.sdl");
const NEW: &str = include_str!("../fixtures/evolve400-new.sdl");

fn params() -> HierarchyParams {
    HierarchyParams { classes: 400, seed: 0xE16, ..Default::default() }
}

fn generated() -> (String, String) {
    let gen = generate(&params());
    let (evolved, _site) = single_class_edit(&gen, 0);
    (chc_sdl::print_schema(&gen.schema), chc_sdl::print_schema(&evolved))
}

#[test]
fn committed_fixtures_match_the_generator() {
    let (old, new) = generated();
    assert_eq!(OLD, old, "evolve400-old.sdl is stale; regenerate (see module docs)");
    assert_eq!(NEW, new, "evolve400-new.sdl is stale; regenerate (see module docs)");
}

#[test]
fn incremental_check_matches_full_on_the_fixture_pair() {
    let old = chc_sdl::compile(OLD).unwrap();
    let new = chc_sdl::compile(NEW).unwrap();
    let old_report = chc_core::check(&old);
    let inc = chc_core::check_incremental(&old, &old_report, &new);
    let full = chc_core::check(&new);
    assert_eq!(
        inc.report.diagnostics, full.diagnostics,
        "incremental re-check must reproduce the full verdict"
    );
    assert!(!inc.diff.edits.is_empty(), "the pair differs by one edit");
    assert!(
        inc.dirty.classes.len() < new.num_classes() / 4,
        "a single-class edit must dirty a small cone, not the schema \
         ({} of {} classes dirty)",
        inc.dirty.classes.len(),
        new.num_classes()
    );
}

#[test]
#[ignore = "writes the fixture files; run explicitly to regenerate"]
fn regenerate() {
    let (old, new) = generated();
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures");
    std::fs::create_dir_all(dir).unwrap();
    std::fs::write(format!("{dir}/evolve400-old.sdl"), old).unwrap();
    std::fs::write(format!("{dir}/evolve400-new.sdl"), new).unwrap();
}
