//! Workload-determinism guarantees of `chc_workloads::driver`.
//!
//! The reproducibility contract: the operation sequence is a pure
//! function of `(seed, mix)`, and a fixed-op-count run produces the same
//! `chc-load/1` JSON *modulo timings* — same line ids, same sample
//! counts, same op-kind totals — no matter how many worker threads
//! execute it. Latency fields are wall-clock and legitimately differ;
//! everything else may not.

use std::collections::BTreeMap;
use std::time::Duration;

use chc_obs::json::{parse_lines, JsonValue};
use chc_workloads::{
    hospital_target, run_load, LoadConfig, MixSpec, Mode, OpGenerator, StopRule,
};

fn cfg(threads: usize, seed: u64) -> LoadConfig {
    LoadConfig {
        id: "det".to_string(),
        mix: MixSpec::default(),
        mode: Mode::Closed { threads, think: Duration::ZERO },
        stop: StopRule::Ops(600),
        seed,
        window: Duration::from_millis(100),
        slow_match: None,
    }
}

/// The timing-free projection of a `chc-load/1` line set: id → samples.
fn shape(bench_lines: &str) -> BTreeMap<String, u64> {
    parse_lines(bench_lines)
        .expect("valid JSON lines")
        .iter()
        .map(|line| {
            assert_eq!(line.get("schema").and_then(JsonValue::as_str), Some("chc-load/1"));
            (
                line.get("id").and_then(JsonValue::as_str).unwrap().to_string(),
                line.get("samples").and_then(JsonValue::as_f64).unwrap() as u64,
            )
        })
        .collect()
}

#[test]
fn same_seed_and_mix_give_identical_op_sequences() {
    let a = OpGenerator::new(99, MixSpec::default());
    let b = OpGenerator::new(99, MixSpec::default());
    for i in 0..2_000 {
        assert_eq!(a.op_at(i), b.op_at(i), "op {i} diverged");
    }
    // A different seed or mix changes the sequence (the knobs do bite).
    let c = OpGenerator::new(100, MixSpec::default());
    assert!((0..100).any(|i| a.op_at(i) != c.op_at(i)));
    let d = OpGenerator::new(99, MixSpec::parse("query=1").unwrap());
    assert!((0..100).any(|i| a.op_at(i).kind != d.op_at(i).kind));
}

#[test]
fn json_shape_is_identical_across_thread_counts() {
    // Fresh target per run: a shared one would accumulate inserts from
    // earlier runs and change validate/evolve pick pools.
    let one = run_load(&hospital_target(80, 0.1, 5), &cfg(1, 42));
    let four = run_load(&hospital_target(80, 0.1, 5), &cfg(4, 42));
    assert_eq!(one.total_ops, 600);
    assert_eq!(four.total_ops, 600);
    let (s1, s4) = (shape(&one.to_bench_lines()), shape(&four.to_bench_lines()));
    assert_eq!(s1, s4, "1-thread and 4-thread runs disagree on ids/samples");
    assert!(s1.contains_key("load/det/all"));
    // Per-kind totals equal too (the summary view of the same property).
    let per = |s: &chc_workloads::LoadSummary| -> BTreeMap<&'static str, u64> {
        s.per_op.iter().map(|o| (o.kind.name(), o.ops)).collect()
    };
    assert_eq!(per(&one), per(&four));
}

#[test]
fn repeat_runs_with_the_same_config_have_the_same_shape() {
    let a = run_load(&hospital_target(60, 0.2, 9), &cfg(2, 7));
    let b = run_load(&hospital_target(60, 0.2, 9), &cfg(2, 7));
    assert_eq!(shape(&a.to_bench_lines()), shape(&b.to_bench_lines()));
}

#[test]
fn single_threaded_runs_are_fully_deterministic() {
    // With one worker the ops execute strictly in sequence order against
    // identical initial state, so even the per-op *outcomes* (which
    // depend on interleaving under N threads) must replay exactly.
    let a = run_load(&hospital_target(60, 0.2, 9), &cfg(1, 7));
    let b = run_load(&hospital_target(60, 0.2, 9), &cfg(1, 7));
    let stats = |s: &chc_workloads::LoadSummary| -> Vec<(u64, u64)> {
        s.per_op.iter().map(|o| (o.ok, o.failed)).collect()
    };
    assert_eq!(stats(&a), stats(&b));
}

#[test]
fn different_seeds_change_the_shape() {
    let a = run_load(&hospital_target(60, 0.1, 3), &cfg(1, 1));
    let b = run_load(&hospital_target(60, 0.1, 3), &cfg(1, 2));
    // Same total, different per-kind split (the draw order moved).
    assert_eq!(a.total_ops, b.total_ops);
    let per = |s: &chc_workloads::LoadSummary| -> Vec<u64> {
        s.per_op.iter().map(|o| o.ops).collect()
    };
    assert_ne!(per(&a), per(&b), "seed had no effect on the op sequence");
}
