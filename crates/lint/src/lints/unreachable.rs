//! L003 — unreachable conditional-type branch.
//!
//! §5.4 reads an excused attribute as a *conditional type*: for `p`
//! declared on `C` with range `T0` and excused by `E1` with range `T1`,
//! members of `C` see `p : [T0 + T1/E1]` — the `T1` branch applies to
//! instances that are also in `E1`. The branch is *reachable* only if
//! some class lies under both `C` and `E1` **and** that class is coherent
//! (can have instances, see L001). When the intersection is non-empty but
//! consists solely of incoherent classes, the guard can never hold for a
//! live instance and the branch is dead weight in every membership test.
//!
//! (An excuser that does not intersect the host hierarchy at all is
//! reported by L002 instead; the two lints partition the failure modes.)

use crate::config::LintLevel;
use crate::finding::Finding;
use crate::lints::LintCtx;
use crate::LintCode;

pub(crate) fn run(ctx: &LintCtx<'_>, out: &mut Vec<Finding>) {
    let schema = ctx.schema;
    for host in schema.class_ids() {
        for decl in &schema.class(host).attrs {
            for entry in schema.excusers_of(host, decl.name) {
                // Structurally dead excuses are L002's finding.
                if !ctx.share_descendant(entry.excuser, host) {
                    continue;
                }
                if ctx.share_coherent_descendant(entry.excuser, host) {
                    continue;
                }
                // Justify "every shared descendant is incoherent" with the
                // derivation for one shared descendant at one attribute
                // where its constraint set admits nothing.
                let derivation = schema
                    .descendants_with_self(entry.excuser)
                    .filter(|&d| schema.is_subclass(d, host))
                    .find_map(|d| {
                        ctx.incoherent_at
                            .iter()
                            .find(|(c, _)| *c == d)
                            .map(|&(c, a)| chc_core::explain_admissibility(schema, c, a))
                    });
                out.push(Finding {
                    code: LintCode::UnreachableBranch,
                    level: LintLevel::Warn,
                    class: entry.excuser,
                    attr: Some(decl.name),
                    file: None,
                    query: None,
                    span: schema
                        .source_map()
                        .excuse_span(entry.excuser, decl.name, host)
                        .or_else(|| {
                            schema
                                .source_map()
                                .site_span(entry.excuser, Some(entry.attr))
                        }),
                    message: format!(
                        "conditional-type branch guarded by `{excuser}` in `{host}.{attr}` is \
                         unreachable: every class under both `{host}` and `{excuser}` is \
                         incoherent",
                        excuser = schema.class_name(entry.excuser),
                        host = schema.class_name(host),
                        attr = schema.resolve(decl.name),
                    ),
                    derivation,
                });
            }
        }
    }
}
