//! L006 — unused class.
//!
//! A class earns its place in a schema by being *referred to*: as a
//! superclass, as an attribute's range (directly or inside a record
//! type), or as the target of an excuse clause — or by declaring
//! attributes that its subtree inherits. A class that does none of these
//! is dead weight: no constraint mentions it and removing it cannot
//! change the meaning of any other definition. Leaf classes that declare
//! attributes are *not* flagged — being instantiable with their own
//! constraints is their use.

use chc_model::{AttrSpec, Range};

use crate::config::LintLevel;
use crate::finding::Finding;
use crate::lints::LintCtx;
use crate::LintCode;

pub(crate) fn run(ctx: &LintCtx<'_>, out: &mut Vec<Finding>) {
    let schema = ctx.schema;
    let mut referenced = vec![false; schema.num_classes()];
    for class in schema.class_ids() {
        for &sup in schema.supers(class) {
            referenced[sup.index()] = true;
        }
        for decl in &schema.class(class).attrs {
            mark_spec(&decl.spec, &mut referenced);
        }
    }
    for class in schema.class_ids() {
        if referenced[class.index()] || !schema.class(class).attrs.is_empty() {
            continue;
        }
        out.push(Finding {
            code: LintCode::UnusedClass,
            level: LintLevel::Warn,
            class,
            attr: None,
            file: None,
            query: None,
            span: schema.source_map().class_span(class),
            message: format!(
                "class `{}` is never referenced as a superclass, range, or excuse target, \
                 and declares no attributes",
                schema.class_name(class),
            ),
            derivation: None,
        });
    }
}

fn mark_spec(spec: &AttrSpec, referenced: &mut [bool]) {
    for exc in &spec.excuses {
        referenced[exc.on.index()] = true;
    }
    match &spec.range {
        Range::Class(c) => referenced[c.index()] = true,
        Range::Record { base, fields } => {
            if let Some(b) = base {
                referenced[b.index()] = true;
            }
            for f in fields {
                mark_spec(&f.spec, referenced);
            }
        }
        _ => {}
    }
}
