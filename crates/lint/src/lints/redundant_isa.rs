//! L004 — redundant is-a edge.
//!
//! The is-a hierarchy is a DAG (§2); an edge `C is-a S` is redundant when
//! another direct superclass of `C` already lies under `S`, so the edge
//! adds nothing to the transitive closure. Redundant edges are harmless
//! to the semantics but mislead readers about where constraints come
//! from, and the paper's locality desideratum (§5) favours hierarchies
//! whose stated edges are exactly the transitive reduction.

use crate::config::LintLevel;
use crate::finding::Finding;
use crate::lints::LintCtx;
use crate::LintCode;

pub(crate) fn run(ctx: &LintCtx<'_>, out: &mut Vec<Finding>) {
    let schema = ctx.schema;
    for class in schema.class_ids() {
        let supers = schema.supers(class);
        for &sup in supers {
            let implied_by = supers
                .iter()
                .find(|&&o| o != sup && schema.is_subclass(o, sup));
            let Some(&via) = implied_by else { continue };
            out.push(Finding {
                code: LintCode::RedundantIsA,
                level: LintLevel::Warn,
                class,
                attr: None,
                file: None,
                query: None,
                span: schema
                    .source_map()
                    .super_span(class, sup)
                    .or_else(|| schema.source_map().class_span(class)),
                message: format!(
                    "is-a edge `{class} is-a {sup}` is redundant: already implied by \
                     superclass `{via}`",
                    class = schema.class_name(class),
                    sup = schema.class_name(sup),
                    via = schema.class_name(via),
                ),
                derivation: None,
            });
        }
    }
}
