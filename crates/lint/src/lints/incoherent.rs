//! L001 — incoherent class.
//!
//! A class is *incoherent at an attribute* when the intersection of every
//! inherited and local constraint on it (with applicable excuses folded
//! in, per the §5.2 semantics) is empty: no value exists that an instance
//! could carry, so the class can have no instances at all. This is the
//! CLASSIC description-logic notion of an incoherent concept, and it is
//! deliberately *distinct* from the checker's unexcused-contradiction
//! error: the checker asks whether contradictions were acknowledged, this
//! lint asks whether the acknowledged result is still inhabitable.
//!
//! Only the topmost incoherent site along each is-a path is reported;
//! descendants that inherit the same empty constraint set are cascade
//! noise, not new information.

use crate::config::LintLevel;
use crate::finding::Finding;
use crate::lints::LintCtx;
use crate::LintCode;

pub(crate) fn run(ctx: &LintCtx<'_>, out: &mut Vec<Finding>) {
    let schema = ctx.schema;
    for &(class, attr) in &ctx.incoherent_at {
        let inherited = schema
            .ancestors_with_self(class)
            .any(|a| a != class && ctx.incoherent_at.contains(&(a, attr)));
        if inherited {
            continue;
        }
        out.push(Finding {
            code: LintCode::IncoherentClass,
            level: LintLevel::Warn,
            class,
            attr: Some(attr),
            file: None,
            query: None,
            span: schema.source_map().site_span(class, Some(attr)),
            message: format!(
                "class `{}` is incoherent: no value can satisfy all constraints on `{}`, \
                 so the class can have no instances",
                schema.class_name(class),
                schema.resolve(attr),
            ),
            derivation: Some(chc_core::explain_admissibility(schema, class, attr)),
        });
    }
}
