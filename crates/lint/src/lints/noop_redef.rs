//! L005 — no-op redefinition.
//!
//! §5.1's revised rule exists so that a subclass redefinition *says
//! something*: it either specializes the inherited range or contradicts
//! it with an excuse. A redeclaration whose range equals an inherited
//! declaration exactly, carrying no excuses, does neither — the
//! constraint already applies via inheritance and the repeated text only
//! creates a second place to edit when the range changes.

use crate::config::LintLevel;
use crate::finding::Finding;
use crate::lints::LintCtx;
use crate::LintCode;

pub(crate) fn run(ctx: &LintCtx<'_>, out: &mut Vec<Finding>) {
    let schema = ctx.schema;
    for class in schema.class_ids() {
        for decl in &schema.class(class).attrs {
            if !decl.spec.excuses.is_empty() {
                continue;
            }
            let repeated = schema.declarers_of(decl.name).iter().find(|&&b| {
                schema.is_strict_subclass(class, b)
                    && schema
                        .declared_attr(b, decl.name)
                        .is_some_and(|d| d.spec.range == decl.spec.range)
            });
            let Some(&from) = repeated else { continue };
            out.push(Finding {
                code: LintCode::NoopRedefinition,
                level: LintLevel::Warn,
                class,
                attr: Some(decl.name),
                file: None,
                query: None,
                span: schema.source_map().site_span(class, Some(decl.name)),
                message: format!(
                    "`{class}.{attr}` re-declares the exact range inherited from `{from}` \
                     with no excuses; the declaration changes nothing",
                    class = schema.class_name(class),
                    attr = schema.resolve(decl.name),
                    from = schema.class_name(from),
                ),
                derivation: None,
            });
        }
    }
}
