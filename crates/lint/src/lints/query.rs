//! Q001–Q005 — the query safety analyzer.
//!
//! Runs the planner's hazard analysis (`chc_query::analyze_query`) over a
//! batch of parsed queries and files the results as coded findings:
//!
//! * **Q001 `unsafe-path`** — a projection step can hit a class or branch
//!   where the attribute is excused or absent (§5.4's "may result in a
//!   run-time failure for certain database states"), or the path is a
//!   definite type error the planner would reject.
//! * **Q002 `dead-guard`** — a `not in C` filter excluding no possible
//!   member of the source extent.
//! * **Q003 `empty-source`** — the scanned class is incoherent (L001), or
//!   the guards are contradictory: the query is vacuous by construction.
//! * **Q004 `discharged-check`** — info: a run-time check the compiler
//!   eliminated, with the admissibility derivation as evidence.
//! * **Q005 `guard-suggestion`** — info: a minimal `p not in C` guard set
//!   that would restore type safety, found by §4.2 case analysis.

use std::collections::HashMap;

use chc_core::{admits_common_value, explain_admissibility, Derivation, Virtualized};
use chc_model::{ClassId, Schema, Sym};
use chc_query::ast::Pred;
use chc_query::{analyze_query, synthesize_guards, SpannedQuery};
use chc_types::{Atom, EntityFacts, Hazard, TypeContext, TySet};

use crate::config::LintLevel;
use crate::finding::Finding;
use crate::LintCode;

pub(crate) fn run(
    v: &Virtualized,
    queries: &[SpannedQuery],
    file: &str,
    out: &mut Vec<Finding>,
) {
    let ctx = TypeContext::with_virtuals(v);
    let schema = &v.schema;
    // Scan-class incoherence, computed lazily: `.chq` batches tend to
    // reuse a handful of source classes, and a full L001 sweep per batch
    // would dominate the analyzer's cost.
    let mut incoherence: HashMap<ClassId, Option<Sym>> = HashMap::new();
    for (qi, sq) in queries.iter().enumerate() {
        let scan = sq.query.class;
        let file_of = |span| (Some(file.to_string()), span);
        let bad_attr = *incoherence.entry(scan).or_insert_with(|| {
            schema
                .applicable_attrs(scan)
                .into_iter()
                .find(|&a| !admits_common_value(schema, scan, a))
        });
        if let Some(attr) = bad_attr {
            let (file, span) = file_of(Some(sq.class_span));
            out.push(Finding {
                code: LintCode::EmptySource,
                level: LintLevel::Warn,
                class: scan,
                attr: Some(attr),
                span,
                file,
                query: Some(qi),
                message: format!(
                    "source class `{}` is incoherent at `{}` and can have no instances; \
                     the query scans nothing",
                    schema.class_name(scan),
                    schema.resolve(attr),
                ),
                derivation: Some(explain_admissibility(schema, scan, attr)),
            });
            continue;
        }

        let safety = analyze_query(&ctx, sq);
        if let Some((err, span)) = &safety.error {
            let (code, message) = match err {
                chc_query::TypeError::PathNeverTyped { step } => (
                    LintCode::UnsafePath,
                    format!(
                        "type error: `{}` at step {} is inapplicable to every possible \
                         value; the path can never be evaluated",
                        sq.query.emit.get(*step).map_or("?", |&a| schema.resolve(a)),
                        step + 1,
                    ),
                ),
                chc_query::TypeError::FilterNeverTyped { pred } => (
                    LintCode::UnsafePath,
                    format!("type error: the path in filter {} is never typed", pred + 1),
                ),
                chc_query::TypeError::VacuousQuery { pred } => (
                    LintCode::EmptySource,
                    format!(
                        "type error: filter {} contradicts what is already known; \
                         the query is vacuous",
                        pred + 1,
                    ),
                ),
            };
            let (file, span) = file_of(*span);
            out.push(Finding {
                code,
                level: LintLevel::Warn,
                class: scan,
                attr: None,
                span,
                file,
                query: Some(qi),
                message,
                derivation: None,
            });
            continue;
        }

        // Q002: dead guards. A `not in C` excludes nothing when the
        // entity is already known to be outside C (downward closure of
        // an earlier guard) or when C shares no descendant with the
        // scanned class at all.
        for (i, pred) in sq.query.filter.iter().enumerate() {
            let Pred::NotInClass(c) = pred else { continue };
            let facts = &safety.pred_facts[i];
            let overlaps = schema
                .descendants_with_self(scan)
                .any(|x| schema.is_subclass(x, *c));
            if facts.known_not_in(*c) || !overlaps {
                let why = if facts.known_not_in(*c) {
                    "already implied by the earlier guards"
                } else {
                    "no member of the source class can be in it"
                };
                let (file, span) = file_of(sq.pred_spans.get(i).copied());
                out.push(Finding {
                    code: LintCode::DeadGuard,
                    level: LintLevel::Warn,
                    class: *c,
                    attr: None,
                    span,
                    file,
                    query: Some(qi),
                    message: format!(
                        "guard `not in {}` excludes nothing: {why}",
                        schema.class_name(*c),
                    ),
                    derivation: None,
                });
            }
        }

        // Q001 for every residual hazard, Q004 for every discharged step.
        for (si, st) in safety.steps.iter().enumerate() {
            let attr_name = schema.resolve(st.attr);
            for h in &st.hazards {
                chc_obs::counter(chc_obs::names::LINT_HAZARDS, 1);
                let message = match h {
                    Hazard::MayBeAbsent { .. } => format!(
                        "the value fetched at `{attr_name}` may be absent for some \
                         database states (an excused `None` upstream); a run-time \
                         check is required",
                    ),
                    Hazard::MayBeInapplicable { .. } => format!(
                        "`{attr_name}` may be inapplicable to the value at step {}; \
                         a run-time check is required",
                        si + 1,
                    ),
                    Hazard::ScalarDereference { .. } => format!(
                        "the value at step {} may be a scalar, which has no \
                         attributes; a run-time check is required",
                        si + 1,
                    ),
                };
                let (file, span) = file_of(st.span);
                out.push(Finding {
                    code: LintCode::UnsafePath,
                    level: LintLevel::Warn,
                    class: scan,
                    attr: Some(st.attr),
                    span,
                    file,
                    query: Some(qi),
                    message,
                    derivation: None,
                });
            }
            if !st.check_needed {
                let (file, span) = file_of(st.span);
                out.push(Finding {
                    code: LintCode::DischargedCheck,
                    level: LintLevel::Info,
                    class: scan,
                    attr: Some(st.attr),
                    span,
                    file,
                    query: Some(qi),
                    message: format!(
                        "run-time check at `{attr_name}` eliminated: no type error \
                         can occur at this step",
                    ),
                    derivation: step_derivation(schema, &st.incoming, st.attr),
                });
            }
        }
        if safety.result_may_be_absent {
            chc_obs::counter(chc_obs::names::LINT_HAZARDS, 1);
            let last = safety.steps.last();
            let (file, span) = file_of(last.and_then(|st| st.span));
            out.push(Finding {
                code: LintCode::UnsafePath,
                level: LintLevel::Warn,
                class: scan,
                attr: last.map(|st| st.attr),
                span,
                file,
                query: Some(qi),
                message: "the projected result may be absent for some database states \
                          (an excused `None` range); consumers must test for it"
                    .to_string(),
                derivation: None,
            });
        }

        // Q005: when hazards remain, look for the guard set that would
        // remove them all.
        if safety.hazard_count() > 0 {
            if let Some(guards) = synthesize_guards(&ctx, &sq.query) {
                chc_obs::counter(chc_obs::names::LINT_GUARDS_SYNTHESIZED, 1);
                let clause = guards
                    .iter()
                    .map(|&c| format!("`not in {}`", schema.class_name(c)))
                    .collect::<Vec<_>>()
                    .join(" and ");
                let derivation = safety
                    .steps
                    .iter()
                    .find(|st| !st.hazards.is_empty())
                    .or(safety.steps.last())
                    .and_then(|st| step_derivation(schema, &st.incoming, st.attr));
                let (file, span) = file_of(Some(sq.span));
                out.push(Finding {
                    code: LintCode::GuardSuggestion,
                    level: LintLevel::Info,
                    class: guards[0],
                    attr: None,
                    span,
                    file,
                    query: Some(qi),
                    message: format!(
                        "adding {clause} would restore type safety (0 checks per row)",
                    ),
                    derivation,
                });
            }
        }
    }
}

/// Evidence for a step verdict: the admissibility derivation of the
/// attribute on the excuser class that contributes the exceptional
/// branch, falling back to the declaring class itself. `None` when the
/// incoming type has no entity atom with a known declaring class.
fn step_derivation(schema: &Schema, incoming: &TySet, attr: Sym) -> Option<Derivation> {
    let facts = incoming.atoms.iter().find_map(|a| match a {
        Atom::Entity(f) => Some(f),
        _ => None,
    })?;
    let decl = declaring_class(schema, facts, attr)?;
    let excuser = schema
        .excusers_of(decl, attr)
        .iter()
        .map(|e| e.excuser)
        .find(|&e| !facts.known_not_in(e));
    Some(explain_admissibility(schema, excuser.unwrap_or(decl), attr))
}

/// The class among the entity's known memberships that declares `attr`.
fn declaring_class(schema: &Schema, facts: &EntityFacts, attr: Sym) -> Option<ClassId> {
    facts
        .pos_classes()
        .find(|&c| schema.declared_attr(c, attr).is_some())
}
