//! L002 — dead excuse.
//!
//! An `excuses p on C` clause carried by class `D` matters only for
//! instances that belong to both `D` and `C` — §5.2's final semantics
//! reads `x.p ∈ R ∨ ∃(E,S). x ∈ E ∧ x.p ∈ S`, and the constraint being
//! escaped applies to members of `C`. If `D` and `C` share no descendant,
//! no instance can ever be entitled to the excuse: the contradicted
//! constraint is not inherited along any is-a path through the excuser.
//! This extends the checker's §5.3 redundant-excuse warning (an excuse
//! for a non-contradiction) to excuses that are structurally unusable.

use chc_core::sat::{ConstraintNode, Derivation, ExcuseNode, Verdict};

use crate::config::LintLevel;
use crate::finding::Finding;
use crate::lints::LintCtx;
use crate::LintCode;

pub(crate) fn run(ctx: &LintCtx<'_>, out: &mut Vec<Finding>) {
    let schema = ctx.schema;
    for class in schema.class_ids() {
        for decl in &schema.class(class).attrs {
            for exc in &decl.spec.excuses {
                if ctx.share_descendant(class, exc.on) {
                    continue;
                }
                // The same provenance shape the coherence lints use: the
                // excused constraint with the (unusable) branch attached,
                // concluded by the no-shared-descendant verdict.
                let derivation = Derivation {
                    class: exc.on,
                    attr: exc.attr,
                    constraints: schema
                        .declared_attr(exc.on, exc.attr)
                        .map(|d| {
                            vec![ConstraintNode {
                                declarer: exc.on,
                                range: d.spec.range.clone(),
                                path: vec![exc.on],
                                excuses: vec![ExcuseNode {
                                    excuser: class,
                                    attr: decl.name,
                                    range: decl.spec.range.clone(),
                                }],
                            }]
                        })
                        .unwrap_or_default(),
                    verdict: Verdict::NoSharedDescendant {
                        excuser: class,
                        on: exc.on,
                    },
                };
                out.push(Finding {
                    code: LintCode::DeadExcuse,
                    level: LintLevel::Warn,
                    class,
                    attr: Some(exc.attr),
                    file: None,
                    query: None,
                    span: schema
                        .source_map()
                        .excuse_span(class, exc.attr, exc.on)
                        .or_else(|| schema.source_map().site_span(class, Some(decl.name))),
                    message: format!(
                        "excuse of `{on}.{attr}` by `{class}` is dead: `{class}` and `{on}` \
                         share no descendant, so no instance can ever use it",
                        on = schema.class_name(exc.on),
                        attr = schema.resolve(exc.attr),
                        class = schema.class_name(class),
                    ),
                    derivation: Some(derivation),
                });
            }
        }
    }
}
