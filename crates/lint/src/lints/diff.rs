//! D001–D005: schema-evolution lints over a semantic diff.
//!
//! These lints consume the edit list and impact cones computed by
//! `chc_core::evolve::diff` and report the evolution hazards the paper's
//! §6 warns about: veracity says every edit propagates to the subclasses,
//! so the lints speak in terms of the *cone* an edit dirties, not just
//! the edited declaration.

use chc_core::{
    admits_common_value, edit_cone, explain_admissibility, DirtySet, EditDetail, SchemaDiff,
    SchemaEdit,
};
use chc_model::{ClassId, Schema};

use crate::code::LintCode;
use crate::config::LintLevel;
use crate::finding::Finding;

pub(crate) fn run(
    old: &Schema,
    new: &Schema,
    diff: &SchemaDiff,
    dirty: &DirtySet,
    old_file: &str,
    findings: &mut Vec<Finding>,
) {
    for edit in &diff.edits {
        breaking_narrowing(old, new, edit, findings);
        excuse_retired_orphan(new, edit, old_file, findings);
        silent_widening(new, edit, findings);
        cone_report(old, new, edit, old_file, findings);
    }
    contradiction_introduced(old, new, dirty, findings);
}

/// The number of extents an edit forces back through validation.
fn extent_count(old: &Schema, new: &Schema, edit: &SchemaEdit) -> usize {
    edit_cone(old, new, edit).extents.len()
}

/// D001: a range narrowed (or incomparably changed) under stored objects.
fn breaking_narrowing(old: &Schema, new: &Schema, edit: &SchemaEdit, findings: &mut Vec<Finding>) {
    let (old_r, new_r, how) = match &edit.detail {
        EditDetail::RangeNarrowed { old, new } => (old, new, "narrowed"),
        EditDetail::RangeChanged { old, new } => (old, new, "changed incomparably"),
        _ => return,
    };
    let Some(nc) = edit.new_class else { return };
    let attr = edit.attr.as_deref().unwrap_or("?");
    let extents = extent_count(old, new, edit);
    findings.push(Finding {
        code: LintCode::BreakingNarrowing,
        level: LintLevel::Warn,
        class: nc,
        attr: edit.attr.as_deref().and_then(|a| new.sym(a)),
        span: edit.new_span,
        file: None,
        query: None,
        message: format!(
            "`{}.{attr}` {how} from {old_r} to {new_r}; stored objects of {extents} \
             extent(s) may no longer validate and need re-checking",
            edit.class,
        ),
        derivation: None,
    });
}

/// D002: the edit made a previously coherent class incoherent. Judged
/// through the shared §5.1 admissibility funnel on both sides of the
/// diff, with the new schema's derivation attached.
fn contradiction_introduced(
    old: &Schema,
    new: &Schema,
    dirty: &DirtySet,
    findings: &mut Vec<Finding>,
) {
    for &nc in &dirty.classes {
        let Some(oc) = old.class_by_name(new.class_name(nc)) else {
            // A brand-new class was never coherent before; its own
            // incoherence is L001 territory, not an evolution hazard.
            continue;
        };
        for attr in new.applicable_attrs(nc) {
            if admits_common_value(new, nc, attr) {
                continue;
            }
            let was_coherent = old
                .sym(new.resolve(attr))
                .is_some_and(|oa| old.has_attr(oc, oa) && admits_common_value(old, oc, oa));
            if !was_coherent {
                continue;
            }
            findings.push(Finding {
                code: LintCode::ContradictionIntroduced,
                level: LintLevel::Warn,
                class: nc,
                attr: Some(attr),
                span: new.source_map().site_span(nc, Some(attr)),
                file: None,
                query: None,
                message: format!(
                    "this edit leaves no admissible value for `{}.{}`: the class was \
                     coherent in the old schema and is incoherent now",
                    new.class_name(nc),
                    new.resolve(attr),
                ),
                derivation: Some(explain_admissibility(new, nc, attr)),
            });
        }
    }
}

/// D003: an excuse was retired while the contradiction it covered is
/// still there — objects admitted only under the §5.2 excuse semantics
/// are orphaned. Anchored at the retired clause in the *old* file.
fn excuse_retired_orphan(
    new: &Schema,
    edit: &SchemaEdit,
    old_file: &str,
    findings: &mut Vec<Finding>,
) {
    let EditDetail::ExcuseRetired { excused, on } = &edit.detail else { return };
    let Some(nc) = edit.new_class else { return };
    let (Some(attr), Some(excused_sym), Some(on_id)) = (
        edit.attr.as_deref().and_then(|a| new.sym(a)),
        new.sym(excused),
        new.class_by_name(on),
    ) else {
        return;
    };
    let Some(decl) = new.declared_attr(nc, attr) else { return };
    // Still contradicted in the new schema? Find the constraint the old
    // clause excused; if the edge or constraint is gone too, there is
    // nothing left to orphan.
    let contradicted = new
        .constraints_on(nc, excused_sym)
        .into_iter()
        .find(|(c, _)| *c == on_id)
        .is_some_and(|(_, spec)| !spec.range.subsumes(new, &decl.spec.range));
    if !contradicted {
        return;
    }
    findings.push(Finding {
        code: LintCode::ExcuseRetiredOrphan,
        level: LintLevel::Warn,
        class: nc,
        attr: Some(attr),
        span: edit.old_span,
        file: Some(old_file.to_string()),
        query: None,
        message: format!(
            "excuse of `{on}.{excused}` by `{}` was retired, but its range still \
             contradicts the constraint; objects admitted only under the excuse are orphaned",
            edit.class,
        ),
        derivation: None,
    });
}

/// D004: info — a widening nothing below was forced to acknowledge.
fn silent_widening(new: &Schema, edit: &SchemaEdit, findings: &mut Vec<Finding>) {
    let EditDetail::RangeWidened { old: old_r, new: new_r } = &edit.detail else { return };
    let Some(nc) = edit.new_class else { return };
    let attr = edit.attr.as_deref().unwrap_or("?");
    findings.push(Finding {
        code: LintCode::SilentWidening,
        level: LintLevel::Info,
        class: nc,
        attr: edit.attr.as_deref().and_then(|a| new.sym(a)),
        span: edit.new_span,
        file: None,
        query: None,
        message: format!(
            "`{}.{attr}` silently widened from {old_r} to {new_r}; stored objects keep \
             validating, but old readers may now see out-of-range values",
            edit.class,
        ),
        derivation: None,
    });
}

/// D005: info — one line per edit stating the size of its impact cone.
fn cone_report(
    old: &Schema,
    new: &Schema,
    edit: &SchemaEdit,
    old_file: &str,
    findings: &mut Vec<Finding>,
) {
    let cone = edit_cone(old, new, edit);
    // Anchor at the class in the new schema when it survives; otherwise
    // at a representative of the cone (skip if the cone is empty too —
    // e.g. a retired leaf affects nothing that still exists).
    let anchor: Option<ClassId> = edit.new_class.or_else(|| cone.classes.first().copied());
    let Some(anchor) = anchor else { return };
    let (span, file) = if edit.new_class.is_some() {
        (edit.new_span, None)
    } else {
        (edit.old_span, Some(old_file.to_string()))
    };
    findings.push(Finding {
        code: LintCode::ConeReport,
        level: LintLevel::Info,
        class: anchor,
        attr: edit.attr.as_deref().and_then(|a| new.sym(a)),
        span,
        file,
        query: None,
        message: format!(
            "{}; impact cone: {} class(es) to re-check, {} extent(s) to re-validate",
            edit.describe(),
            cone.classes.len(),
            cone.extents.len(),
        ),
        derivation: None,
    });
}
