//! The individual lints, one module per code, sharing a [`LintCtx`].

pub(crate) mod dead_excuse;
pub(crate) mod diff;
pub(crate) mod incoherent;
pub(crate) mod noop_redef;
pub(crate) mod query;
pub(crate) mod redundant_isa;
pub(crate) mod unreachable;
pub(crate) mod unused;

use std::collections::BTreeSet;

use chc_model::{ClassId, Schema, Sym};

/// Facts shared across lints, computed once per run. The expensive part —
/// the joint-admissibility sweep — is shared by L001 (incoherent class)
/// and L003 (unreachable branch).
pub(crate) struct LintCtx<'s> {
    pub schema: &'s Schema,
    /// (class, attr) pairs whose constraint set admits no value.
    pub incoherent_at: BTreeSet<(ClassId, Sym)>,
    /// Classes incoherent at *some* attribute (can have no instances),
    /// indexed by class.
    pub incoherent: Vec<bool>,
}

impl<'s> LintCtx<'s> {
    pub fn new(schema: &'s Schema) -> Self {
        let mut incoherent_at = BTreeSet::new();
        let mut incoherent = vec![false; schema.num_classes()];
        for class in schema.class_ids() {
            chc_obs::counter(chc_obs::names::LINT_CLASSES, 1);
            for attr in schema.applicable_attrs(class) {
                if !chc_core::admits_common_value(schema, class, attr) {
                    incoherent_at.insert((class, attr));
                    incoherent[class.index()] = true;
                }
            }
        }
        LintCtx { schema, incoherent_at, incoherent }
    }

    /// Do `a` and `b` share a descendant (including themselves)? This is
    /// whether an instance could ever belong to both classes at once.
    pub fn share_descendant(&self, a: ClassId, b: ClassId) -> bool {
        self.schema
            .descendants_with_self(a)
            .any(|x| self.schema.is_subclass(x, b))
    }

    /// As [`share_descendant`](Self::share_descendant), but the shared
    /// descendant must also be coherent (able to have instances).
    pub fn share_coherent_descendant(&self, a: ClassId, b: ClassId) -> bool {
        self.schema
            .descendants_with_self(a)
            .any(|x| self.schema.is_subclass(x, b) && !self.incoherent[x.index()])
    }
}
