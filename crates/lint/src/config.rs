//! Severity configuration: which lints are allowed, warned, or denied.

use crate::code::LintCode;

/// What to do with a lint's findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintLevel {
    /// Suppress entirely.
    Allow,
    /// Report, but do not fail the run.
    Warn,
    /// Report and fail the run (non-zero exit from the CLI).
    Deny,
}

/// Per-lint severity levels. Every lint defaults to [`LintLevel::Warn`];
/// `deny_warnings` promotes surviving warnings to deny (the CLI's
/// `--deny warnings`), mirroring `rustc -D warnings`.
#[derive(Debug, Clone)]
pub struct LintConfig {
    levels: [LintLevel; LintCode::ALL.len()],
    /// Promote every warn-level finding to deny.
    pub deny_warnings: bool,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig { levels: [LintLevel::Warn; LintCode::ALL.len()], deny_warnings: false }
    }
}

impl LintConfig {
    /// All lints at their default (warn) level.
    pub fn new() -> Self {
        LintConfig::default()
    }

    /// Sets one lint's level (the last `--allow/--warn/--deny` wins).
    pub fn set(&mut self, code: LintCode, level: LintLevel) {
        self.levels[code.idx()] = level;
    }

    /// The effective level of a lint, with `deny_warnings` applied.
    /// An explicit `Allow` survives `deny_warnings` — a suppressed lint
    /// stays suppressed, again like `rustc -D warnings -A <lint>`.
    pub fn level(&self, code: LintCode) -> LintLevel {
        match self.levels[code.idx()] {
            LintLevel::Warn if self.deny_warnings => LintLevel::Deny,
            l => l,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_to_warn() {
        let cfg = LintConfig::new();
        for c in LintCode::ALL {
            assert_eq!(cfg.level(c), LintLevel::Warn);
        }
    }

    #[test]
    fn deny_warnings_spares_explicit_allows() {
        let mut cfg = LintConfig::new();
        cfg.deny_warnings = true;
        cfg.set(LintCode::UnusedClass, LintLevel::Allow);
        assert_eq!(cfg.level(LintCode::UnusedClass), LintLevel::Allow);
        assert_eq!(cfg.level(LintCode::DeadExcuse), LintLevel::Deny);
    }
}
