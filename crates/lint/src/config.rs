//! Severity configuration: which lints are allowed, noted, warned, or
//! denied.

use crate::code::LintCode;

/// What to do with a lint's findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintLevel {
    /// Suppress entirely.
    Allow,
    /// Report as an informational note; never fails the run and is not
    /// promoted by `deny_warnings` (like rustc's `note:` diagnostics).
    Info,
    /// Report, but do not fail the run.
    Warn,
    /// Report and fail the run (non-zero exit from the CLI).
    Deny,
}

/// Per-lint severity levels. Schema lints and the hazard-reporting query
/// lints default to [`LintLevel::Warn`]; the advisory Q004/Q005 default
/// to [`LintLevel::Info`]. `deny_warnings` promotes surviving warnings to
/// deny (the CLI's `--deny warnings`), mirroring `rustc -D warnings`.
#[derive(Debug, Clone)]
pub struct LintConfig {
    levels: [LintLevel; LintCode::ALL.len()],
    /// Promote every warn-level finding to deny.
    pub deny_warnings: bool,
}

/// The out-of-the-box level of a lint.
fn default_level(code: LintCode) -> LintLevel {
    match code {
        LintCode::DischargedCheck
        | LintCode::GuardSuggestion
        | LintCode::SilentWidening
        | LintCode::ConeReport => LintLevel::Info,
        _ => LintLevel::Warn,
    }
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig { levels: LintCode::ALL.map(default_level), deny_warnings: false }
    }
}

impl LintConfig {
    /// All lints at their default levels.
    pub fn new() -> Self {
        LintConfig::default()
    }

    /// Sets one lint's level (the last `--allow/--warn/--deny` wins).
    pub fn set(&mut self, code: LintCode, level: LintLevel) {
        self.levels[code.idx()] = level;
    }

    /// The effective level of a lint, with `deny_warnings` applied.
    /// An explicit `Allow` survives `deny_warnings` — a suppressed lint
    /// stays suppressed, again like `rustc -D warnings -A <lint>` — and
    /// info-level lints are not warnings, so they are not promoted.
    pub fn level(&self, code: LintCode) -> LintLevel {
        match self.levels[code.idx()] {
            LintLevel::Warn if self.deny_warnings => LintLevel::Deny,
            l => l,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_warn_except_advisory_query_lints() {
        let cfg = LintConfig::new();
        for c in LintCode::ALL {
            let expect = match c {
                LintCode::DischargedCheck
                | LintCode::GuardSuggestion
                | LintCode::SilentWidening
                | LintCode::ConeReport => LintLevel::Info,
                _ => LintLevel::Warn,
            };
            assert_eq!(cfg.level(c), expect, "{c}");
        }
    }

    #[test]
    fn deny_warnings_spares_explicit_allows_and_info() {
        let mut cfg = LintConfig::new();
        cfg.deny_warnings = true;
        cfg.set(LintCode::UnusedClass, LintLevel::Allow);
        assert_eq!(cfg.level(LintCode::UnusedClass), LintLevel::Allow);
        assert_eq!(cfg.level(LintCode::DeadExcuse), LintLevel::Deny);
        // Info-level lints survive --deny warnings untouched.
        assert_eq!(cfg.level(LintCode::DischargedCheck), LintLevel::Info);
        assert_eq!(cfg.level(LintCode::GuardSuggestion), LintLevel::Info);
        // But an explicit --deny on them still works.
        cfg.set(LintCode::GuardSuggestion, LintLevel::Deny);
        assert_eq!(cfg.level(LintCode::GuardSuggestion), LintLevel::Deny);
    }
}
