//! Lint codes: the stable identifiers findings are filed under.

use std::fmt;

/// One lint, identified by a stable `L00x` code and a kebab-case name.
/// Either spelling is accepted by [`LintCode::parse`] (and thus by the
/// CLI's `--allow/--warn/--deny` flags).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// D001: a `chc diff` edit narrowed (or incomparably changed) a range
    /// that stored objects may already inhabit — every extent below the
    /// edited class needs re-validation before the new schema is trusted.
    BreakingNarrowing,
    /// D002: an edit made a previously coherent class incoherent — the
    /// §5.1 k-way admission check (`admits_common_value`) passed in the
    /// old schema and fails in the new one; the derivation is attached.
    ContradictionIntroduced,
    /// D003: an `excuses p on C` clause was retired while the declared
    /// range still contradicts the constraint it excused — objects
    /// admitted only under that excuse are orphaned (§5.2 semantics).
    ExcuseRetiredOrphan,
    /// D004: info-level — a range was widened with no subclass forced to
    /// react; silent for old data, but old readers may see new values.
    SilentWidening,
    /// D005: info-level — the impact cone of one edit: how many classes'
    /// verdicts may flip and how many extents need re-validation.
    ConeReport,
    /// L001: a class whose constraints (with excuses folded in) admit no
    /// value for some attribute — the class can have no instances. The
    /// CLASSIC notion of an *incoherent* concept, applied to §5.1 schemas.
    IncoherentClass,
    /// L002: an `excuses p on C` clause whose excuser shares no
    /// descendant with `C`, so no instance can ever be entitled to the
    /// excuse — extending the §5.3 redundant-excuse warning.
    DeadExcuse,
    /// L003: a conditional-type branch `S/E` (§5.4) whose guard class `E`
    /// does intersect the host hierarchy, but only through incoherent
    /// classes — the branch can never be taken by a live instance.
    UnreachableBranch,
    /// L004: a direct is-a edge already implied by another direct
    /// superclass (a transitive-reduction violation).
    RedundantIsA,
    /// L005: a subclass re-declares an attribute with exactly an
    /// inherited range and no excuses — the declaration changes nothing.
    NoopRedefinition,
    /// L006: a class that is never referenced (as a superclass, range,
    /// or excuse target) and declares no attributes of its own.
    UnusedClass,
    /// Q001: a projection step of a query can hit a class or branch where
    /// the attribute is excused or absent — §5.4's "the query/program may
    /// result in a run-time failure for certain database states". Also
    /// covers the definite type errors the planner would reject outright.
    UnsafePath,
    /// Q002: a `not in C` filter that excludes no possible member of the
    /// source extent — the guard is dead weight.
    DeadGuard,
    /// Q003: the scanned class is L001-incoherent (it can have no
    /// instances), so the query is vacuous by construction.
    EmptySource,
    /// Q004: info-level — a run-time check the compiler eliminated, with
    /// the derivation of why no type error can occur there.
    DischargedCheck,
    /// Q005: info-level — a minimal `p not in C` guard set that would
    /// restore type safety, synthesized by case analysis over the §4.2
    /// conditional-type alternatives.
    GuardSuggestion,
}

impl LintCode {
    /// Every lint, in code order.
    pub const ALL: [LintCode; 16] = [
        LintCode::BreakingNarrowing,
        LintCode::ContradictionIntroduced,
        LintCode::ExcuseRetiredOrphan,
        LintCode::SilentWidening,
        LintCode::ConeReport,
        LintCode::IncoherentClass,
        LintCode::DeadExcuse,
        LintCode::UnreachableBranch,
        LintCode::RedundantIsA,
        LintCode::NoopRedefinition,
        LintCode::UnusedClass,
        LintCode::UnsafePath,
        LintCode::DeadGuard,
        LintCode::EmptySource,
        LintCode::DischargedCheck,
        LintCode::GuardSuggestion,
    ];

    /// The stable `L00x` code.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::BreakingNarrowing => "D001",
            LintCode::ContradictionIntroduced => "D002",
            LintCode::ExcuseRetiredOrphan => "D003",
            LintCode::SilentWidening => "D004",
            LintCode::ConeReport => "D005",
            LintCode::IncoherentClass => "L001",
            LintCode::DeadExcuse => "L002",
            LintCode::UnreachableBranch => "L003",
            LintCode::RedundantIsA => "L004",
            LintCode::NoopRedefinition => "L005",
            LintCode::UnusedClass => "L006",
            LintCode::UnsafePath => "Q001",
            LintCode::DeadGuard => "Q002",
            LintCode::EmptySource => "Q003",
            LintCode::DischargedCheck => "Q004",
            LintCode::GuardSuggestion => "Q005",
        }
    }

    /// Whether this lint analyzes a schema *diff* (`D...`) rather than a
    /// single schema or a query batch.
    pub fn is_diff(self) -> bool {
        matches!(
            self,
            LintCode::BreakingNarrowing
                | LintCode::ContradictionIntroduced
                | LintCode::ExcuseRetiredOrphan
                | LintCode::SilentWidening
                | LintCode::ConeReport
        )
    }

    /// Whether this lint analyzes queries (`Q...`) rather than the schema
    /// itself (`L...`).
    pub fn is_query(self) -> bool {
        matches!(
            self,
            LintCode::UnsafePath
                | LintCode::DeadGuard
                | LintCode::EmptySource
                | LintCode::DischargedCheck
                | LintCode::GuardSuggestion
        )
    }

    /// The kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::BreakingNarrowing => "breaking-narrowing",
            LintCode::ContradictionIntroduced => "contradiction-introduced",
            LintCode::ExcuseRetiredOrphan => "excuse-retired-orphan",
            LintCode::SilentWidening => "silent-widening",
            LintCode::ConeReport => "cone-report",
            LintCode::IncoherentClass => "incoherent-class",
            LintCode::DeadExcuse => "dead-excuse",
            LintCode::UnreachableBranch => "unreachable-branch",
            LintCode::RedundantIsA => "redundant-is-a",
            LintCode::NoopRedefinition => "noop-redefinition",
            LintCode::UnusedClass => "unused-class",
            LintCode::UnsafePath => "unsafe-path",
            LintCode::DeadGuard => "dead-guard",
            LintCode::EmptySource => "empty-source",
            LintCode::DischargedCheck => "discharged-check",
            LintCode::GuardSuggestion => "guard-suggestion",
        }
    }

    /// One-line description (shown by `chc lint --help` and docs/LINTS.md).
    pub fn summary(self) -> &'static str {
        match self {
            LintCode::BreakingNarrowing => {
                "schema edit narrowed a range that stored objects may inhabit"
            }
            LintCode::ContradictionIntroduced => {
                "schema edit made a previously coherent class incoherent"
            }
            LintCode::ExcuseRetiredOrphan => {
                "excuse retired while its contradiction persists; excused objects orphaned"
            }
            LintCode::SilentWidening => {
                "range widened with no subclass forced to react"
            }
            LintCode::ConeReport => {
                "impact cone of one schema edit: dirty classes and extents"
            }
            LintCode::IncoherentClass => {
                "constraints admit no value for an attribute; the class can have no instances"
            }
            LintCode::DeadExcuse => {
                "excuse clause whose excuser shares no descendant with the excused class"
            }
            LintCode::UnreachableBranch => {
                "conditional-type branch reachable only through incoherent classes"
            }
            LintCode::RedundantIsA => {
                "direct is-a edge already implied by another direct superclass"
            }
            LintCode::NoopRedefinition => {
                "attribute re-declared with exactly an inherited range and no excuses"
            }
            LintCode::UnusedClass => {
                "class never referenced anywhere and declaring no attributes"
            }
            LintCode::UnsafePath => {
                "query path can hit an excused or absent attribute at run time"
            }
            LintCode::DeadGuard => {
                "`not in C` filter that excludes no possible member of the source"
            }
            LintCode::EmptySource => {
                "scanned class is incoherent, so the query is vacuous"
            }
            LintCode::DischargedCheck => {
                "run-time check eliminated by the compiler, with its derivation"
            }
            LintCode::GuardSuggestion => {
                "minimal `not in C` guard set that would restore type safety"
            }
        }
    }

    /// Index into per-lint tables (dense, 0-based, in `ALL` order).
    pub(crate) fn idx(self) -> usize {
        self as usize
    }

    /// Parses either spelling: `L003` (case-insensitive) or
    /// `unreachable-branch`.
    pub fn parse(s: &str) -> Option<LintCode> {
        LintCode::ALL
            .into_iter()
            .find(|c| c.code().eq_ignore_ascii_case(s) || c.name() == s)
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_names_round_trip_through_parse() {
        for c in LintCode::ALL {
            assert_eq!(LintCode::parse(c.code()), Some(c));
            assert_eq!(LintCode::parse(&c.code().to_lowercase()), Some(c));
            assert_eq!(LintCode::parse(c.name()), Some(c));
        }
        assert_eq!(LintCode::parse("L999"), None);
        assert_eq!(LintCode::parse("no-such-lint"), None);
    }

    #[test]
    fn codes_are_unique_and_ordered() {
        let codes: Vec<&str> = LintCode::ALL.iter().map(|c| c.code()).collect();
        let mut sorted = codes.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(codes, sorted);
    }

    #[test]
    fn idx_is_dense_and_aligned_with_all() {
        // LintConfig indexes its level table with `idx()`; the enum's
        // discriminant order and ALL's order must therefore agree.
        for (i, c) in LintCode::ALL.into_iter().enumerate() {
            assert_eq!(c.idx(), i, "{c}");
        }
    }

    #[test]
    fn families_partition_the_codes() {
        for c in LintCode::ALL {
            let fam = &c.code()[..1];
            assert_eq!(c.is_diff(), fam == "D", "{c}");
            assert_eq!(c.is_query(), fam == "Q", "{c}");
        }
    }
}
