//! Lint codes: the stable identifiers findings are filed under.

use std::fmt;

/// One lint, identified by a stable `L00x` code and a kebab-case name.
/// Either spelling is accepted by [`LintCode::parse`] (and thus by the
/// CLI's `--allow/--warn/--deny` flags).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// L001: a class whose constraints (with excuses folded in) admit no
    /// value for some attribute — the class can have no instances. The
    /// CLASSIC notion of an *incoherent* concept, applied to §5.1 schemas.
    IncoherentClass,
    /// L002: an `excuses p on C` clause whose excuser shares no
    /// descendant with `C`, so no instance can ever be entitled to the
    /// excuse — extending the §5.3 redundant-excuse warning.
    DeadExcuse,
    /// L003: a conditional-type branch `S/E` (§5.4) whose guard class `E`
    /// does intersect the host hierarchy, but only through incoherent
    /// classes — the branch can never be taken by a live instance.
    UnreachableBranch,
    /// L004: a direct is-a edge already implied by another direct
    /// superclass (a transitive-reduction violation).
    RedundantIsA,
    /// L005: a subclass re-declares an attribute with exactly an
    /// inherited range and no excuses — the declaration changes nothing.
    NoopRedefinition,
    /// L006: a class that is never referenced (as a superclass, range,
    /// or excuse target) and declares no attributes of its own.
    UnusedClass,
}

impl LintCode {
    /// Every lint, in code order.
    pub const ALL: [LintCode; 6] = [
        LintCode::IncoherentClass,
        LintCode::DeadExcuse,
        LintCode::UnreachableBranch,
        LintCode::RedundantIsA,
        LintCode::NoopRedefinition,
        LintCode::UnusedClass,
    ];

    /// The stable `L00x` code.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::IncoherentClass => "L001",
            LintCode::DeadExcuse => "L002",
            LintCode::UnreachableBranch => "L003",
            LintCode::RedundantIsA => "L004",
            LintCode::NoopRedefinition => "L005",
            LintCode::UnusedClass => "L006",
        }
    }

    /// The kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::IncoherentClass => "incoherent-class",
            LintCode::DeadExcuse => "dead-excuse",
            LintCode::UnreachableBranch => "unreachable-branch",
            LintCode::RedundantIsA => "redundant-is-a",
            LintCode::NoopRedefinition => "noop-redefinition",
            LintCode::UnusedClass => "unused-class",
        }
    }

    /// One-line description (shown by `chc lint --help` and docs/LINTS.md).
    pub fn summary(self) -> &'static str {
        match self {
            LintCode::IncoherentClass => {
                "constraints admit no value for an attribute; the class can have no instances"
            }
            LintCode::DeadExcuse => {
                "excuse clause whose excuser shares no descendant with the excused class"
            }
            LintCode::UnreachableBranch => {
                "conditional-type branch reachable only through incoherent classes"
            }
            LintCode::RedundantIsA => {
                "direct is-a edge already implied by another direct superclass"
            }
            LintCode::NoopRedefinition => {
                "attribute re-declared with exactly an inherited range and no excuses"
            }
            LintCode::UnusedClass => {
                "class never referenced anywhere and declaring no attributes"
            }
        }
    }

    /// Index into per-lint tables (dense, 0-based, in `ALL` order).
    pub(crate) fn idx(self) -> usize {
        self as usize
    }

    /// Parses either spelling: `L003` (case-insensitive) or
    /// `unreachable-branch`.
    pub fn parse(s: &str) -> Option<LintCode> {
        LintCode::ALL
            .into_iter()
            .find(|c| c.code().eq_ignore_ascii_case(s) || c.name() == s)
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_names_round_trip_through_parse() {
        for c in LintCode::ALL {
            assert_eq!(LintCode::parse(c.code()), Some(c));
            assert_eq!(LintCode::parse(&c.code().to_lowercase()), Some(c));
            assert_eq!(LintCode::parse(c.name()), Some(c));
        }
        assert_eq!(LintCode::parse("L999"), None);
        assert_eq!(LintCode::parse("no-such-lint"), None);
    }

    #[test]
    fn codes_are_unique_and_ordered() {
        let codes: Vec<&str> = LintCode::ALL.iter().map(|c| c.code()).collect();
        let mut sorted = codes.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(codes, sorted);
    }
}
