//! Lint findings: what a lint reports, where, and how loudly.

use chc_core::Derivation;
use chc_model::{ClassId, Schema, Span, Sym};
use chc_obs::json::JsonValue;

use crate::code::LintCode;
use crate::config::LintLevel;

/// One lint finding, anchored to a class (and possibly an attribute) with
/// a source span when the schema was compiled from SDL text.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which lint fired.
    pub code: LintCode,
    /// Effective severity after configuration (never `Allow`; allowed
    /// findings are dropped before they reach the report).
    pub level: LintLevel,
    /// The class the finding is about.
    pub class: ClassId,
    /// The attribute involved, when the lint is attribute-scoped.
    pub attr: Option<Sym>,
    /// Source position of the offending declaration, when known.
    pub span: Option<Span>,
    /// Human-readable explanation, with schema names resolved.
    pub message: String,
    /// The provenance tree justifying the verdict, when the lint's
    /// decision came from the shared admissibility procedure
    /// (L001/L002/L003). Embedded in the JSON report so the linter, the
    /// checker's `--explain`, and the validator's audit ledger all cite
    /// the same structure.
    pub derivation: Option<Derivation>,
}

impl Finding {
    /// The `file:line:col` (or `line:col`) prefix, when a span is known.
    pub fn location(&self, schema: &Schema) -> Option<String> {
        self.span.map(|s| schema.source_map().locate(s))
    }

    /// This finding as a [`JsonValue`] object (round-trippable through
    /// `chc_obs::json::parse`).
    pub fn to_json(&self, schema: &Schema) -> JsonValue {
        let mut fields: Vec<(&str, JsonValue)> = vec![
            ("code", JsonValue::string(self.code.code())),
            ("name", JsonValue::string(self.code.name())),
            (
                "level",
                JsonValue::string(match self.level {
                    LintLevel::Deny => "deny",
                    _ => "warn",
                }),
            ),
            ("class", JsonValue::string(schema.class_name(self.class))),
            ("message", JsonValue::string(&self.message)),
        ];
        if let Some(attr) = self.attr {
            fields.push(("attr", JsonValue::string(schema.resolve(attr))));
        }
        if let Some(span) = self.span {
            fields.push(("line", JsonValue::number(span.line as f64)));
            fields.push(("col", JsonValue::number(span.col as f64)));
        }
        if let Some(d) = &self.derivation {
            fields.push(("derivation", d.to_json(schema)));
        }
        JsonValue::object(fields)
    }
}
