//! Lint findings: what a lint reports, where, and how loudly.

use chc_core::Derivation;
use chc_model::{ClassId, Schema, Span, Sym};
use chc_obs::json::JsonValue;

use crate::code::LintCode;
use crate::config::LintLevel;

/// One lint finding, anchored to a class (and possibly an attribute) with
/// a source span when the input carried positions. Schema findings point
/// into the SDL file via the schema's source map; query findings point
/// into the `.chq` file (or ad-hoc string) named by [`Finding::file`].
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which lint fired.
    pub code: LintCode,
    /// Effective severity after configuration (never `Allow`; allowed
    /// findings are dropped before they reach the report).
    pub level: LintLevel,
    /// The class the finding is about (for query lints: the scanned
    /// class, or the class a guard names).
    pub class: ClassId,
    /// The attribute involved, when the lint is attribute-scoped.
    pub attr: Option<Sym>,
    /// Source position of the offending declaration or query token.
    pub span: Option<Span>,
    /// For query findings: the file (or `<query>`) the span points into.
    /// Schema findings leave this `None` and locate via the source map.
    pub file: Option<String>,
    /// For query findings: 0-based index of the query within its batch.
    pub query: Option<usize>,
    /// Human-readable explanation, with schema names resolved.
    pub message: String,
    /// The provenance tree justifying the verdict, when the lint's
    /// decision came from the shared admissibility procedure
    /// (L001/L002/L003, and Q003/Q004/Q005 on the query side). Embedded
    /// in the JSON report so the linter, the checker's `--explain`, and
    /// the validator's audit ledger all cite the same structure.
    pub derivation: Option<Derivation>,
}

impl Finding {
    /// The `file:line:col` (or `line:col`) prefix, when a span is known.
    /// Query findings locate in their own file, not the schema's.
    pub fn location(&self, schema: &Schema) -> Option<String> {
        let span = self.span?;
        Some(match &self.file {
            Some(file) => format!("{file}:{span}"),
            None => schema.source_map().locate(span),
        })
    }

    /// This finding as a [`JsonValue`] object (round-trippable through
    /// `chc_obs::json::parse`).
    pub fn to_json(&self, schema: &Schema) -> JsonValue {
        let mut fields: Vec<(&str, JsonValue)> = vec![
            ("code", JsonValue::string(self.code.code())),
            ("name", JsonValue::string(self.code.name())),
            (
                "kind",
                JsonValue::string(if self.code.is_query() {
                    "query"
                } else if self.code.is_diff() {
                    "diff"
                } else {
                    "schema"
                }),
            ),
            (
                "level",
                JsonValue::string(match self.level {
                    LintLevel::Deny => "deny",
                    LintLevel::Info => "info",
                    _ => "warn",
                }),
            ),
            ("class", JsonValue::string(schema.class_name(self.class))),
            ("message", JsonValue::string(&self.message)),
        ];
        if let Some(attr) = self.attr {
            fields.push(("attr", JsonValue::string(schema.resolve(attr))));
        }
        if let Some(span) = self.span {
            fields.push(("line", JsonValue::number(span.line as f64)));
            fields.push(("col", JsonValue::number(span.col as f64)));
        }
        if let Some(file) = &self.file {
            fields.push(("file", JsonValue::string(file)));
        }
        if let Some(q) = self.query {
            fields.push(("query", JsonValue::number(q as f64)));
        }
        if let Some(d) = &self.derivation {
            fields.push(("derivation", d.to_json(schema)));
        }
        JsonValue::object(fields)
    }
}
