//! # chc-lint — static analysis over compiled schemas
//!
//! The paper's *verifiability* desideratum (§5) asks that "the language
//! compiler or environment should be able to alert the programmer about
//! cases of inconsistent specification". `chc-core`'s checker enforces
//! the §5.1 specialization-or-excuse rule; this crate goes further, with
//! a registry of coded lints over a compiled [`chc_model::Schema`] *and
//! its source spans*:
//!
//! | code | name | finding |
//! |------|------|---------|
//! | L001 | `incoherent-class` | constraints admit no value; no instances possible |
//! | L002 | `dead-excuse` | excuse no instance could ever be entitled to |
//! | L003 | `unreachable-branch` | conditional-type branch (§5.4) only incoherent classes could take |
//! | L004 | `redundant-is-a` | is-a edge implied by another direct superclass |
//! | L005 | `noop-redefinition` | redeclaration equal to an inherited range, no excuses |
//! | L006 | `unused-class` | class referenced nowhere, declaring nothing |
//!
//! Each lint is catalogued with SDL examples in `docs/LINTS.md`. Entry
//! point: [`run`] with a [`LintConfig`] (per-code allow/warn/deny plus
//! `deny_warnings`); render the [`LintReport`] with [`render_report`]
//! (rustc-style text quoting the offending line) or
//! [`LintReport::to_json`] (round-trippable through `chc_obs::json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod code;
pub mod config;
pub mod engine;
pub mod finding;
mod lints;
pub mod render;

pub use code::LintCode;
pub use config::{LintConfig, LintLevel};
pub use engine::{run, LintReport};
pub use finding::Finding;
pub use render::{render_finding, render_report};
