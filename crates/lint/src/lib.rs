//! # chc-lint — static analysis over compiled schemas
//!
//! The paper's *verifiability* desideratum (§5) asks that "the language
//! compiler or environment should be able to alert the programmer about
//! cases of inconsistent specification". `chc-core`'s checker enforces
//! the §5.1 specialization-or-excuse rule; this crate goes further, with
//! a registry of coded lints over a compiled [`chc_model::Schema`] *and
//! its source spans*:
//!
//! | code | name | finding |
//! |------|------|---------|
//! | L001 | `incoherent-class` | constraints admit no value; no instances possible |
//! | L002 | `dead-excuse` | excuse no instance could ever be entitled to |
//! | L003 | `unreachable-branch` | conditional-type branch (§5.4) only incoherent classes could take |
//! | L004 | `redundant-is-a` | is-a edge implied by another direct superclass |
//! | L005 | `noop-redefinition` | redeclaration equal to an inherited range, no excuses |
//! | L006 | `unused-class` | class referenced nowhere, declaring nothing |
//!
//! A second family analyzes *queries* (`.chq` batches or ad-hoc strings)
//! against a virtualized schema — §5.4's static safety analysis lifted
//! into the lint framework:
//!
//! | code | name | finding |
//! |------|------|---------|
//! | Q001 | `unsafe-path` | projection step can hit an excused/absent attribute |
//! | Q002 | `dead-guard` | `not in C` filter that excludes nothing |
//! | Q003 | `empty-source` | scanned class incoherent or guards contradictory |
//! | Q004 | `discharged-check` | check eliminated by the compiler (info, with derivation) |
//! | Q005 | `guard-suggestion` | minimal guard set restoring type safety (info) |
//!
//! A third family analyzes schema *evolution*: [`run_diff`] semantically
//! diffs two compiled schemas (`chc_core::diff_schemas`) and lints the
//! edit list against the §6 desiderata, reporting per-edit impact cones
//! over the is-a DAG:
//!
//! | code | name | finding |
//! |------|------|---------|
//! | D001 | `breaking-narrowing` | range narrowed under stored objects (re-validation hazard) |
//! | D002 | `contradiction-introduced` | previously coherent class made incoherent (with derivation) |
//! | D003 | `excuse-retired-orphan` | excuse retired while its contradiction persists |
//! | D004 | `silent-widening` | range widened with no subclass forced to react (info) |
//! | D005 | `cone-report` | dirty-set size of one edit (info) |
//!
//! Each lint is catalogued with SDL examples in `docs/LINTS.md`. Entry
//! points: [`run`] over a schema, [`run_queries`] over parsed queries,
//! [`run_with_queries`] for both in one report, [`run_diff`] over a
//! schema pair, all with a [`LintConfig`] (per-code allow/warn/deny plus
//! `deny_warnings`); render the [`LintReport`] with [`render_report`] /
//! [`render_report_sources`] (rustc-style text quoting the offending
//! line) or [`LintReport::to_json`] (round-trippable through
//! `chc_obs::json`, with a `kind` field distinguishing schema, query,
//! and diff findings).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod code;
pub mod config;
pub mod engine;
pub mod finding;
mod lints;
pub mod render;

pub use code::LintCode;
pub use config::{LintConfig, LintLevel};
pub use engine::{run, run_diff, run_queries, run_with_queries, DiffReport, LintReport};
pub use finding::Finding;
pub use render::{render_finding, render_report, render_report_sources};
