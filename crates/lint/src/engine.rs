//! The lint driver: runs every registered lint, applies severity
//! configuration, and packages the findings.

use chc_model::Schema;
use chc_obs::json::JsonValue;

use crate::config::{LintConfig, LintLevel};
use crate::finding::Finding;
use crate::lints::{self, LintCtx};
use crate::LintCode;

/// The outcome of a lint run: surviving findings, ordered by source
/// position (findings without spans sort last, by class then code).
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All warn- and deny-level findings. Allowed lints never appear.
    pub findings: Vec<Finding>,
}

/// Runs every lint over `schema` and filters by `config`.
///
/// ```
/// let schema = chc_sdl::compile("
///     class Person with age: 1..120;
///     class Employee is-a Person with age: 1..120;
/// ").unwrap();
/// let report = chc_lint::run(&schema, &chc_lint::LintConfig::new());
/// // Employee.age repeats Person.age verbatim: L005 fires.
/// assert_eq!(report.findings.len(), 1);
/// assert_eq!(report.findings[0].code, chc_lint::LintCode::NoopRedefinition);
/// ```
pub fn run(schema: &Schema, config: &LintConfig) -> LintReport {
    let _span = chc_obs::span(chc_obs::names::SPAN_LINT_RUN);
    let ctx = LintCtx::new(schema);
    let mut findings = Vec::new();
    lints::incoherent::run(&ctx, &mut findings);
    lints::dead_excuse::run(&ctx, &mut findings);
    lints::unreachable::run(&ctx, &mut findings);
    lints::redundant_isa::run(&ctx, &mut findings);
    lints::noop_redef::run(&ctx, &mut findings);
    lints::unused::run(&ctx, &mut findings);

    findings.retain_mut(|f| match config.level(f.code) {
        LintLevel::Allow => false,
        level => {
            f.level = level;
            true
        }
    });
    chc_obs::counter(chc_obs::names::LINT_FIRED, findings.len() as u64);

    findings.sort_by_key(|f| {
        (
            f.span.is_none(),
            f.span.map(|s| (s.line, s.col)).unwrap_or((0, 0)),
            f.class,
            f.code,
        )
    });
    LintReport { findings }
}

impl LintReport {
    /// Whether the run passes: no deny-level findings.
    pub fn is_ok(&self) -> bool {
        self.denied().next().is_none()
    }

    /// The deny-level findings.
    pub fn denied(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.level == LintLevel::Deny)
    }

    /// The warn-level findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.level == LintLevel::Warn)
    }

    /// How many findings carry each code, over [`LintCode::ALL`].
    pub fn count(&self, code: LintCode) -> usize {
        self.findings.iter().filter(|f| f.code == code).count()
    }

    /// The whole report as a [`JsonValue`] object:
    /// `{"tool":"chc-lint","file":…,"findings":[…],"counts":{…}}`.
    /// Rendering it and feeding the text back through
    /// `chc_obs::json::parse` reproduces the value.
    pub fn to_json(&self, schema: &Schema) -> JsonValue {
        let mut fields: Vec<(&str, JsonValue)> = Vec::new();
        fields.push(("tool", JsonValue::string("chc-lint")));
        if let Some(file) = schema.source_map().file() {
            fields.push(("file", JsonValue::string(file)));
        }
        fields.push((
            "findings",
            JsonValue::array(self.findings.iter().map(|f| f.to_json(schema))),
        ));
        fields.push((
            "counts",
            JsonValue::object([
                ("total", JsonValue::number(self.findings.len() as f64)),
                ("warn", JsonValue::number(self.warnings().count() as f64)),
                ("deny", JsonValue::number(self.denied().count() as f64)),
            ]),
        ));
        JsonValue::object(fields)
    }
}
