//! The lint driver: runs every registered lint, applies severity
//! configuration, and packages the findings.

use chc_core::Virtualized;
use chc_model::Schema;
use chc_obs::json::JsonValue;
use chc_query::SpannedQuery;

use crate::config::{LintConfig, LintLevel};
use crate::finding::Finding;
use crate::lints::{self, LintCtx};
use crate::LintCode;

/// The outcome of a lint run: surviving findings, ordered by source
/// position (findings without spans sort last, by class then code).
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All warn- and deny-level findings. Allowed lints never appear.
    pub findings: Vec<Finding>,
}

/// Runs every lint over `schema` and filters by `config`.
///
/// ```
/// let schema = chc_sdl::compile("
///     class Person with age: 1..120;
///     class Employee is-a Person with age: 1..120;
/// ").unwrap();
/// let report = chc_lint::run(&schema, &chc_lint::LintConfig::new());
/// // Employee.age repeats Person.age verbatim: L005 fires.
/// assert_eq!(report.findings.len(), 1);
/// assert_eq!(report.findings[0].code, chc_lint::LintCode::NoopRedefinition);
/// ```
pub fn run(schema: &Schema, config: &LintConfig) -> LintReport {
    let _span = chc_obs::span(chc_obs::names::SPAN_LINT_RUN);
    let ctx = LintCtx::new(schema);
    let mut findings = Vec::new();
    lints::incoherent::run(&ctx, &mut findings);
    lints::dead_excuse::run(&ctx, &mut findings);
    lints::unreachable::run(&ctx, &mut findings);
    lints::redundant_isa::run(&ctx, &mut findings);
    lints::noop_redef::run(&ctx, &mut findings);
    lints::unused::run(&ctx, &mut findings);

    findings.retain_mut(|f| match config.level(f.code) {
        LintLevel::Allow => false,
        level => {
            f.level = level;
            true
        }
    });
    chc_obs::counter(chc_obs::names::LINT_FIRED, findings.len() as u64);

    sort_findings(&mut findings);
    LintReport { findings }
}

/// Runs the query safety analyzer (Q001–Q005) over a parsed `.chq` batch
/// against a virtualized schema, filtered by `config`. `file` names the
/// batch in locations and the JSON report (`<query>` for ad-hoc strings).
///
/// A query preceded by a `-- expect: Q001 …` directive inverts the
/// severity contract for the named codes: findings that do fire are
/// downgraded to info (so known-hazardous showcase queries pass a
/// `--deny warnings` sweep), and an expected code that does *not* fire
/// becomes a deny-level finding — the fixture has gone stale.
pub fn run_queries(
    v: &Virtualized,
    queries: &[SpannedQuery],
    file: Option<&str>,
    config: &LintConfig,
) -> LintReport {
    let _span = chc_obs::span(chc_obs::names::SPAN_LINT_QUERY);
    let file = file.unwrap_or("<query>");
    let mut findings = Vec::new();
    lints::query::run(v, queries, file, &mut findings);

    let mut fired: Vec<Vec<LintCode>> = vec![Vec::new(); queries.len()];
    for f in &findings {
        if let Some(qi) = f.query {
            fired[qi].push(f.code);
        }
    }
    let expects_code = |qi: Option<usize>, code: LintCode| {
        qi.is_some_and(|qi| {
            queries[qi]
                .expect
                .iter()
                .any(|e| e.eq_ignore_ascii_case(code.code()) || e == code.name())
        })
    };
    findings.retain_mut(|f| {
        if expects_code(f.query, f.code) {
            f.level = LintLevel::Info;
            f.message.push_str(" (expected)");
            true
        } else {
            match config.level(f.code) {
                LintLevel::Allow => false,
                level => {
                    f.level = level;
                    true
                }
            }
        }
    });
    for (qi, sq) in queries.iter().enumerate() {
        for exp in &sq.expect {
            let met = fired[qi].iter().any(|c| {
                exp.eq_ignore_ascii_case(c.code()) || exp == c.name()
            });
            if !met {
                findings.push(Finding {
                    code: LintCode::parse(exp).unwrap_or(LintCode::UnsafePath),
                    level: LintLevel::Deny,
                    class: sq.query.class,
                    attr: None,
                    span: Some(sq.span),
                    file: Some(file.to_string()),
                    query: Some(qi),
                    message: format!(
                        "expected {exp} to fire on this query, but it did not"
                    ),
                    derivation: None,
                });
            }
        }
    }
    chc_obs::counter(chc_obs::names::LINT_FIRED, findings.len() as u64);

    sort_findings(&mut findings);
    LintReport { findings }
}

/// The outcome of a diff-lint run: the semantic edit list, the impact
/// cone it dirties, and the D-family findings over both.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// The matched, classified edits between the two schemas.
    pub diff: chc_core::SchemaDiff,
    /// Union of every edit's impact cone, in new-schema ids.
    pub dirty: chc_core::DirtySet,
    /// The D001–D005 findings, filtered by the severity configuration.
    pub report: LintReport,
}

/// Diffs `old` against `new` and runs the evolution lints (D001–D005)
/// over the edit list, filtered by `config`. Findings anchored in the old
/// schema's file (e.g. a retired excuse clause, D003) carry `old_file` in
/// [`Finding::file`]; everything else locates in the new schema.
///
/// Render findings against the *new* schema — every finding's class id
/// lives there.
pub fn run_diff(
    old: &Schema,
    new: &Schema,
    old_file: Option<&str>,
    config: &LintConfig,
) -> DiffReport {
    let _span = chc_obs::span(chc_obs::names::SPAN_LINT_RUN);
    let old_file = old_file.or_else(|| old.source_map().file()).unwrap_or("<old>");
    let diff = chc_core::diff_schemas(old, new);
    let dirty = chc_core::impact_cone(old, new, &diff);
    let mut findings = Vec::new();
    lints::diff::run(old, new, &diff, &dirty, old_file, &mut findings);

    findings.retain_mut(|f| match config.level(f.code) {
        LintLevel::Allow => false,
        level => {
            f.level = level;
            true
        }
    });
    chc_obs::counter(chc_obs::names::LINT_FIRED, findings.len() as u64);

    sort_findings(&mut findings);
    DiffReport { diff, dirty, report: LintReport { findings } }
}

/// Runs the schema lints and the query safety analyzer in one report.
/// Schema lints run over the original `schema` (virtual classes would
/// only produce cascade noise); query analysis needs the virtualized
/// view. Render the result against `v.schema` — original class ids are
/// preserved by virtualization and the source map is carried over.
pub fn run_with_queries(
    schema: &Schema,
    v: &Virtualized,
    queries: &[SpannedQuery],
    file: Option<&str>,
    config: &LintConfig,
) -> LintReport {
    let mut findings = run(schema, config).findings;
    findings.extend(run_queries(v, queries, file, config).findings);
    LintReport { findings }
}

/// Source order within each input: spanned findings first (by position),
/// then span-less ones by class and code; schema findings (no file)
/// before query findings.
fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        let key = |f: &Finding| {
            (
                f.file.clone(),
                f.query,
                f.span.is_none(),
                f.span.map(|s| (s.line, s.col)).unwrap_or((0, 0)),
                f.class,
                f.code,
            )
        };
        key(a).cmp(&key(b))
    });
}

impl LintReport {
    /// Whether the run passes: no deny-level findings.
    pub fn is_ok(&self) -> bool {
        self.denied().next().is_none()
    }

    /// The deny-level findings.
    pub fn denied(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.level == LintLevel::Deny)
    }

    /// The warn-level findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.level == LintLevel::Warn)
    }

    /// The info-level findings (advisory notes; never fail the run).
    pub fn infos(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.level == LintLevel::Info)
    }

    /// How many findings carry each code, over [`LintCode::ALL`].
    pub fn count(&self, code: LintCode) -> usize {
        self.findings.iter().filter(|f| f.code == code).count()
    }

    /// The whole report as a [`JsonValue`] object:
    /// `{"schema":"chc-lint/1","tool":"chc-lint","file":…,"findings":[…],"counts":{…}}`.
    /// The `schema` field is the envelope version tag — downstream
    /// parsers should check it to detect format drift. Rendering the
    /// value and feeding the text back through `chc_obs::json::parse`
    /// reproduces it.
    pub fn to_json(&self, schema: &Schema) -> JsonValue {
        let mut fields: Vec<(&str, JsonValue)> = Vec::new();
        fields.push(("schema", JsonValue::string("chc-lint/1")));
        fields.push(("tool", JsonValue::string("chc-lint")));
        if let Some(file) = schema.source_map().file() {
            fields.push(("file", JsonValue::string(file)));
        }
        fields.push((
            "findings",
            JsonValue::array(self.findings.iter().map(|f| f.to_json(schema))),
        ));
        fields.push((
            "counts",
            JsonValue::object([
                ("total", JsonValue::number(self.findings.len() as f64)),
                ("warn", JsonValue::number(self.warnings().count() as f64)),
                ("deny", JsonValue::number(self.denied().count() as f64)),
                ("info", JsonValue::number(self.infos().count() as f64)),
            ]),
        ));
        JsonValue::object(fields)
    }
}
