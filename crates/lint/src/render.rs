//! The text renderer: rustc-style findings that quote the offending SDL
//! line with a caret.
//!
//! ```text
//! warning[L004]: is-a edge `QR is-a Person` is redundant: already implied by superclass `Quaker`
//!   --> demo.sdl:4:23
//!    |
//!  4 | class QR is-a Quaker, Person;
//!    |                       ^
//! ```
//!
//! Query findings (`Q...`) point into the `.chq` file instead of the
//! schema; [`render_report_sources`] takes both texts and quotes the
//! right one per finding.

use chc_model::Schema;

use crate::config::LintLevel;
use crate::engine::LintReport;
use crate::finding::Finding;

/// Renders one finding. `src` is the text the finding's span points into
/// (the SDL source for schema findings, the query text for Q findings),
/// used to quote the offending line; without it (or without a span) only
/// the headline and location are printed.
pub fn render_finding(finding: &Finding, schema: &Schema, src: Option<&str>) -> String {
    let level = match finding.level {
        LintLevel::Deny => "error",
        LintLevel::Info => "info",
        _ => "warning",
    };
    let mut out = format!("{level}[{}]: {}", finding.code.code(), finding.message);
    let Some(span) = finding.span else {
        return out;
    };
    if let Some(loc) = finding.location(schema) {
        out.push_str(&format!("\n  --> {loc}"));
    }
    let quoted = src.and_then(|s| s.lines().nth(span.line as usize - 1));
    if let Some(line) = quoted {
        let gutter = span.line.to_string().len().max(2);
        let caret_pad = " ".repeat(span.col as usize - 1);
        out.push_str(&format!(
            "\n{blank} |\n{num:>gutter$} | {line}\n{blank} | {caret_pad}^",
            blank = " ".repeat(gutter),
            num = span.line,
        ));
    }
    out
}

/// Renders a whole report against a single source text (schema-only
/// runs). The empty report renders as the empty string.
pub fn render_report(report: &LintReport, schema: &Schema, src: Option<&str>) -> String {
    render_report_sources(report, schema, src, None)
}

/// Renders a mixed report: schema findings quote `schema_src`, query
/// findings (those carrying a file) quote `query_src`.
pub fn render_report_sources(
    report: &LintReport,
    schema: &Schema,
    schema_src: Option<&str>,
    query_src: Option<&str>,
) -> String {
    if report.findings.is_empty() {
        return String::new();
    }
    let mut blocks: Vec<String> = report
        .findings
        .iter()
        .map(|f| {
            let src = if f.file.is_some() { query_src } else { schema_src };
            render_finding(f, schema, src)
        })
        .collect();
    let denied = report.denied().count();
    let warned = report.warnings().count();
    let noted = report.infos().count();
    let mut summary = Vec::new();
    if denied > 0 {
        summary.push(format!("{denied} error{}", plural(denied)));
    }
    if warned > 0 {
        summary.push(format!("{warned} warning{}", plural(warned)));
    }
    if noted > 0 {
        summary.push(format!("{noted} note{}", plural(noted)));
    }
    blocks.push(format!("lint: {} emitted", summary.join(", ")));
    blocks.join("\n\n")
}

fn plural(n: usize) -> &'static str {
    if n == 1 { "" } else { "s" }
}
