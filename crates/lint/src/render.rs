//! The text renderer: rustc-style findings that quote the offending SDL
//! line with a caret.
//!
//! ```text
//! warning[L004]: is-a edge `QR is-a Person` is redundant: already implied by superclass `Quaker`
//!   --> demo.sdl:4:23
//!    |
//!  4 | class QR is-a Quaker, Person;
//!    |                       ^
//! ```

use chc_model::Schema;

use crate::config::LintLevel;
use crate::engine::LintReport;
use crate::finding::Finding;

/// Renders one finding. `src` is the SDL text the schema was compiled
/// from, used to quote the offending line; without it (or without a
/// span) only the headline and location are printed.
pub fn render_finding(finding: &Finding, schema: &Schema, src: Option<&str>) -> String {
    let level = match finding.level {
        LintLevel::Deny => "error",
        _ => "warning",
    };
    let mut out = format!("{level}[{}]: {}", finding.code.code(), finding.message);
    let Some(span) = finding.span else {
        return out;
    };
    out.push_str(&format!(
        "\n  --> {}",
        schema.source_map().locate(span)
    ));
    let quoted = src.and_then(|s| s.lines().nth(span.line as usize - 1));
    if let Some(line) = quoted {
        let gutter = span.line.to_string().len().max(2);
        let caret_pad = " ".repeat(span.col as usize - 1);
        out.push_str(&format!(
            "\n{blank} |\n{num:>gutter$} | {line}\n{blank} | {caret_pad}^",
            blank = " ".repeat(gutter),
            num = span.line,
        ));
    }
    out
}

/// Renders a whole report: every finding separated by blank lines, then
/// a one-line summary. The empty report renders as the empty string.
pub fn render_report(report: &LintReport, schema: &Schema, src: Option<&str>) -> String {
    if report.findings.is_empty() {
        return String::new();
    }
    let mut blocks: Vec<String> = report
        .findings
        .iter()
        .map(|f| render_finding(f, schema, src))
        .collect();
    let denied = report.denied().count();
    let warned = report.warnings().count();
    let mut summary = Vec::new();
    if denied > 0 {
        summary.push(format!("{denied} error{}", plural(denied)));
    }
    if warned > 0 {
        summary.push(format!("{warned} warning{}", plural(warned)));
    }
    blocks.push(format!("lint: {} emitted", summary.join(", ")));
    blocks.join("\n\n")
}

fn plural(n: usize) -> &'static str {
    if n == 1 { "" } else { "s" }
}
