//! Per-lint fixture pairs: for each code, one schema that fires it and
//! one near-miss that stays clean (of that code *and* of everything
//! else — the near-misses double as whole-engine false-positive tests).

use chc_lint::{run, LintCode, LintConfig, LintLevel};
use chc_model::Schema;

fn lint(src: &str, file: &str) -> (Schema, chc_lint::LintReport) {
    let schema = chc_sdl::compile_with_source(src, file).expect(file);
    let report = run(&schema, &LintConfig::new());
    (schema, report)
}

const PAIRS: [(LintCode, &str, &str, &str, &str); 6] = [
    (
        LintCode::IncoherentClass,
        "L001_fires.sdl",
        include_str!("fixtures/L001_fires.sdl"),
        "L001_clean.sdl",
        include_str!("fixtures/L001_clean.sdl"),
    ),
    (
        LintCode::DeadExcuse,
        "L002_fires.sdl",
        include_str!("fixtures/L002_fires.sdl"),
        "L002_clean.sdl",
        include_str!("fixtures/L002_clean.sdl"),
    ),
    (
        LintCode::UnreachableBranch,
        "L003_fires.sdl",
        include_str!("fixtures/L003_fires.sdl"),
        "L003_clean.sdl",
        include_str!("fixtures/L003_clean.sdl"),
    ),
    (
        LintCode::RedundantIsA,
        "L004_fires.sdl",
        include_str!("fixtures/L004_fires.sdl"),
        "L004_clean.sdl",
        include_str!("fixtures/L004_clean.sdl"),
    ),
    (
        LintCode::NoopRedefinition,
        "L005_fires.sdl",
        include_str!("fixtures/L005_fires.sdl"),
        "L005_clean.sdl",
        include_str!("fixtures/L005_clean.sdl"),
    ),
    (
        LintCode::UnusedClass,
        "L006_fires.sdl",
        include_str!("fixtures/L006_fires.sdl"),
        "L006_clean.sdl",
        include_str!("fixtures/L006_clean.sdl"),
    ),
];

#[test]
fn each_fires_fixture_fires_its_lint() {
    for (code, file, src, _, _) in PAIRS {
        let (_, report) = lint(src, file);
        assert!(
            report.count(code) >= 1,
            "{file}: expected {code} to fire, got {:?}",
            report.findings.iter().map(|f| f.code).collect::<Vec<_>>(),
        );
    }
}

#[test]
fn each_clean_fixture_is_completely_clean() {
    for (code, _, _, file, src) in PAIRS {
        let (schema, report) = lint(src, file);
        assert!(
            report.findings.is_empty(),
            "{file}: near-miss for {code} should be clean, got:\n{}",
            chc_lint::render_report(&report, &schema, Some(src)),
        );
    }
}

#[test]
fn fires_findings_carry_file_positions() {
    for (code, file, src, _, _) in PAIRS {
        let (schema, report) = lint(src, file);
        let f = report
            .findings
            .iter()
            .find(|f| f.code == code)
            .expect("fires");
        let loc = f.location(&schema).expect("span recorded from SDL");
        assert!(
            loc.starts_with(&format!("{file}:")),
            "{code}: location should be file:line:col, got {loc}"
        );
        // The rendered block quotes the offending source line with a caret.
        let text = chc_lint::render_finding(f, &schema, Some(src));
        assert!(text.contains(&format!("--> {loc}")), "{text}");
        assert!(
            text.lines().last().unwrap().trim_end().ends_with('^'),
            "{text}"
        );
    }
}

#[test]
fn allow_suppresses_and_deny_escalates() {
    let src = include_str!("fixtures/L005_fires.sdl");
    let schema = chc_sdl::compile(src).unwrap();

    let mut cfg = LintConfig::new();
    cfg.set(LintCode::NoopRedefinition, LintLevel::Allow);
    assert!(run(&schema, &cfg).findings.is_empty());

    let mut cfg = LintConfig::new();
    cfg.set(LintCode::NoopRedefinition, LintLevel::Deny);
    let report = run(&schema, &cfg);
    assert!(!report.is_ok());
    assert_eq!(report.denied().count(), 1);

    let mut cfg = LintConfig::new();
    cfg.deny_warnings = true;
    assert!(!run(&schema, &cfg).is_ok());
}

#[test]
fn json_report_round_trips_through_chc_obs() {
    let (schema, report) = lint(include_str!("fixtures/L001_fires.sdl"), "L001_fires.sdl");
    let json = report.to_json(&schema);
    let text = json.render();
    let parsed = chc_obs::json::parse(&text).expect("valid JSON");
    assert_eq!(parsed, json);
    assert_eq!(
        parsed.get("schema").and_then(|v| v.as_str()),
        Some("chc-lint/1"),
        "the envelope leads with its version tag"
    );
    assert_eq!(
        parsed.get("tool").and_then(|v| v.as_str()),
        Some("chc-lint")
    );
    assert_eq!(
        parsed.get("file").and_then(|v| v.as_str()),
        Some("L001_fires.sdl")
    );
    let findings = parsed.get("findings").and_then(|v| v.as_array()).unwrap();
    assert!(!findings.is_empty());
    let f = &findings[0];
    assert_eq!(f.get("code").and_then(|v| v.as_str()), Some("L001"));
    assert!(f.get("line").and_then(|v| v.as_f64()).is_some());
}

#[test]
fn coherence_findings_embed_a_derivation() {
    // L001/L002/L003 justify their verdicts with the same Derivation
    // structure the checker's --explain renders.
    for (fixture, code, verdict_kind) in [
        (include_str!("fixtures/L001_fires.sdl"), "L001", "empty"),
        (
            include_str!("fixtures/L002_fires.sdl"),
            "L002",
            "dead-excuse",
        ),
        (include_str!("fixtures/L003_fires.sdl"), "L003", "empty"),
    ] {
        let (schema, report) = lint(fixture, "fixture.sdl");
        let json = report.to_json(&schema);
        let findings = json.get("findings").and_then(|v| v.as_array()).unwrap();
        let f = findings
            .iter()
            .find(|f| f.get("code").and_then(|v| v.as_str()) == Some(code))
            .unwrap_or_else(|| panic!("{code} fires on its fixture"));
        let d = f
            .get("derivation")
            .unwrap_or_else(|| panic!("{code} carries a derivation"));
        assert_eq!(
            d.get("verdict")
                .and_then(|v| v.get("kind"))
                .and_then(|v| v.as_str()),
            Some(verdict_kind),
            "{code}"
        );
        assert!(
            !d.get("constraints")
                .and_then(|v| v.as_array())
                .unwrap()
                .is_empty(),
            "{code} derivation cites at least one constraint"
        );
    }
    // Structural lints carry no derivation.
    let (schema, report) = lint(include_str!("fixtures/L004_fires.sdl"), "f.sdl");
    let json = report.to_json(&schema);
    let findings = json.get("findings").and_then(|v| v.as_array()).unwrap();
    let f = findings
        .iter()
        .find(|f| f.get("code").and_then(|v| v.as_str()) == Some("L004"))
        .unwrap();
    assert!(f.get("derivation").is_none());
}

#[test]
fn api_built_schemas_lint_without_spans() {
    // Schemas assembled through the builder have no source map; findings
    // must still be produced, just without positions.
    let mut b = chc_model::SchemaBuilder::new();
    let person = b.declare("Person").unwrap();
    let ghost = b.declare("Ghost").unwrap();
    let spec = chc_model::AttrSpec::plain(chc_model::Range::Str);
    b.add_attr(person, "name", spec).unwrap();
    let _ = ghost;
    let schema = b.build().unwrap();
    let report = run(&schema, &LintConfig::new());
    assert_eq!(report.count(LintCode::UnusedClass), 1);
    assert!(report.findings[0].span.is_none());
    assert!(report.findings[0].location(&schema).is_none());
}
