//! Per-Q-code fixture pairs: for each query lint, a schema + `.chq`
//! batch that fires it and a near-miss that stays clean of it (and of
//! every warn/deny-level finding — info notes like Q004/Q005 are
//! advisory and allowed anywhere).

use chc_core::{virtualize, Virtualized};
use chc_lint::{run_queries, LintCode, LintConfig, LintLevel, LintReport};
use chc_query::parse_query_file;

const MINI_HOSPITAL: &str = include_str!("fixtures/mini_hospital.sdl");

fn lint(sdl: &str, chq: &str, chq_file: &str) -> (Virtualized, LintReport) {
    let schema = chc_sdl::compile(sdl).expect("fixture schema compiles");
    let v = virtualize(&schema).expect("fixture schema virtualizes");
    let queries = parse_query_file(&v.schema, chq).expect("fixture queries parse");
    let report = run_queries(&v, &queries, Some(chq_file), &LintConfig::new());
    (v, report)
}

/// (code, schema, fires batch, fires name, clean schema, clean batch, clean name)
const PAIRS: [(LintCode, &str, &str, &str, &str, &str, &str); 5] = [
    (
        LintCode::UnsafePath,
        MINI_HOSPITAL,
        include_str!("fixtures/Q001_fires.chq"),
        "Q001_fires.chq",
        MINI_HOSPITAL,
        include_str!("fixtures/Q001_clean.chq"),
        "Q001_clean.chq",
    ),
    (
        LintCode::DeadGuard,
        include_str!("fixtures/Q002_fires.sdl"),
        include_str!("fixtures/Q002_fires.chq"),
        "Q002_fires.chq",
        include_str!("fixtures/Q002_clean.sdl"),
        include_str!("fixtures/Q002_clean.chq"),
        "Q002_clean.chq",
    ),
    (
        LintCode::EmptySource,
        include_str!("fixtures/Q003.sdl"),
        include_str!("fixtures/Q003_fires.chq"),
        "Q003_fires.chq",
        include_str!("fixtures/Q003.sdl"),
        include_str!("fixtures/Q003_clean.chq"),
        "Q003_clean.chq",
    ),
    (
        LintCode::DischargedCheck,
        MINI_HOSPITAL,
        include_str!("fixtures/Q004_fires.chq"),
        "Q004_fires.chq",
        include_str!("fixtures/Q004_clean.sdl"),
        include_str!("fixtures/Q004_clean.chq"),
        "Q004_clean.chq",
    ),
    (
        LintCode::GuardSuggestion,
        MINI_HOSPITAL,
        include_str!("fixtures/Q005_fires.chq"),
        "Q005_fires.chq",
        MINI_HOSPITAL,
        include_str!("fixtures/Q005_clean.chq"),
        "Q005_clean.chq",
    ),
];

#[test]
fn each_fires_fixture_fires_its_lint() {
    for (code, sdl, chq, file, _, _, _) in PAIRS {
        let (_, report) = lint(sdl, chq, file);
        assert!(
            report.count(code) >= 1,
            "{file}: expected {code} to fire, got {:?}",
            report.findings.iter().map(|f| f.code).collect::<Vec<_>>(),
        );
    }
}

#[test]
fn each_clean_fixture_is_clean_of_its_code_and_of_warnings() {
    for (code, _, _, _, sdl, chq, file) in PAIRS {
        let (v, report) = lint(sdl, chq, file);
        let rendered = chc_lint::render_report_sources(&report, &v.schema, None, Some(chq));
        assert_eq!(
            report.count(code),
            0,
            "{file}: near-miss for {code} should not fire it, got:\n{rendered}",
        );
        assert!(
            report.is_ok() && report.warnings().next().is_none(),
            "{file}: near-miss should carry no warn/deny findings, got:\n{rendered}",
        );
    }
}

#[test]
fn fires_findings_point_into_the_query_file() {
    for (code, sdl, chq, file, _, _, _) in PAIRS {
        let (v, report) = lint(sdl, chq, file);
        let f = report
            .findings
            .iter()
            .find(|f| f.code == code)
            .expect("fires");
        let loc = f.location(&v.schema).expect("span recorded from the batch");
        assert!(
            loc.starts_with(&format!("{file}:")),
            "{code}: location should be chq-file:line:col, got {loc}"
        );
        let text = chc_lint::render_finding(f, &v.schema, Some(chq));
        assert!(text.contains(&format!("--> {loc}")), "{text}");
        assert!(
            text.lines().last().unwrap().trim_end().ends_with('^'),
            "{text}"
        );
    }
}

#[test]
fn allow_suppresses_and_deny_escalates_query_lints() {
    let schema = chc_sdl::compile(MINI_HOSPITAL).unwrap();
    let v = virtualize(&schema).unwrap();
    let chq = include_str!("fixtures/Q001_fires.chq");
    let queries = parse_query_file(&v.schema, chq).unwrap();

    let mut cfg = LintConfig::new();
    cfg.set(LintCode::UnsafePath, LintLevel::Allow);
    let report = run_queries(&v, &queries, None, &cfg);
    assert_eq!(report.count(LintCode::UnsafePath), 0);

    let mut cfg = LintConfig::new();
    cfg.set(LintCode::UnsafePath, LintLevel::Deny);
    let report = run_queries(&v, &queries, None, &cfg);
    assert!(!report.is_ok());
    assert!(report.denied().all(|f| f.code == LintCode::UnsafePath));

    // `--deny warnings` escalates Q001 but leaves the info-level
    // Q004/Q005 notes advisory.
    let mut cfg = LintConfig::new();
    cfg.deny_warnings = true;
    let report = run_queries(&v, &queries, None, &cfg);
    assert!(!report.is_ok());
    assert!(report
        .findings
        .iter()
        .all(|f| f.level == LintLevel::Deny || f.level == LintLevel::Info));
}

#[test]
fn unmet_expectation_is_a_deny_finding() {
    let schema = chc_sdl::compile(MINI_HOSPITAL).unwrap();
    let v = virtualize(&schema).unwrap();
    // This query is perfectly safe; expecting Q001 must fail the run.
    let chq = "-- expect: Q001\nfor p in Patient emit p.site.location.city;\n";
    let queries = parse_query_file(&v.schema, chq).unwrap();
    let report = run_queries(&v, &queries, None, &LintConfig::new());
    assert!(!report.is_ok());
    let f = report.denied().next().expect("synthetic deny finding");
    assert_eq!(f.code, LintCode::UnsafePath);
    assert!(f.message.contains("expected Q001 to fire"), "{}", f.message);
}

#[test]
fn query_findings_round_trip_through_json_with_kind_and_file() {
    let (v, report) = lint(MINI_HOSPITAL, include_str!("fixtures/Q001_fires.chq"), "q.chq");
    let json = report.to_json(&v.schema);
    let text = json.render();
    let parsed = chc_obs::json::parse(&text).expect("valid JSON");
    assert_eq!(parsed, json);
    let findings = parsed.get("findings").and_then(|f| f.as_array()).unwrap();
    assert!(!findings.is_empty());
    for f in findings {
        assert_eq!(f.get("kind").and_then(|v| v.as_str()), Some("query"));
        assert_eq!(f.get("file").and_then(|v| v.as_str()), Some("q.chq"));
        assert!(f.get("query").and_then(|v| v.as_f64()).is_some());
    }
}

#[test]
fn schema_only_json_keeps_the_legacy_shape_plus_kind() {
    // Deprecation window: consumers of the schema-only JSON report must
    // see the shape they always saw — `kind` is the one additive field,
    // and the query-batch fields stay absent entirely.
    let schema = chc_sdl::compile(include_str!("fixtures/L005_fires.sdl")).unwrap();
    let report = chc_lint::run(&schema, &LintConfig::new());
    let parsed = chc_obs::json::parse(&report.to_json(&schema).render()).unwrap();
    let findings = parsed.get("findings").and_then(|f| f.as_array()).unwrap();
    assert!(!findings.is_empty());
    for f in findings {
        assert_eq!(f.get("kind").and_then(|v| v.as_str()), Some("schema"));
        assert!(f.get("file").is_none());
        assert!(f.get("query").is_none());
        for key in ["code", "name", "level", "message", "class"] {
            assert!(f.get(key).is_some(), "legacy key `{key}` missing");
        }
    }
}
