//! The static/dynamic parity check behind E12: every Q001 the analyzer
//! predicts must correspond to an actual unchecked-mode failure on the
//! E4 hospital dataset, and every query it certifies safe must run
//! without one. The lint is exactly as trustworthy as this equivalence.

use chc_lint::{run_queries, LintCode, LintConfig};
use chc_query::{compile, execute, parse_query_spanned, CheckMode};
use chc_types::TypeContext;
use chc_workloads::{build_hospital, HospitalParams};

const QUERIES: [(&str, bool); 4] = [
    // (query, analyzer should flag Q001)
    ("for p in Patient emit p.treatedAt.location.city", false),
    ("for a in Alcoholic emit a.treatedBy.name", false),
    ("for p in Patient emit p.treatedAt.location.state", true),
    (
        "for p in Patient where p not in Tubercular_Patient emit p.treatedAt.location.state",
        false,
    ),
];

#[test]
fn q001_predictions_match_unchecked_failures_on_e4_data() {
    let db = build_hospital(&HospitalParams {
        patients: 2_000,
        tubercular_fraction: 0.05,
        ..Default::default()
    });
    let v = &db.virtualized;
    let ctx = TypeContext::with_virtuals(v);

    for (text, expect_flagged) in QUERIES {
        let sq = parse_query_spanned(&v.schema, text).expect(text);
        let report = run_queries(v, std::slice::from_ref(&sq), None, &LintConfig::new());
        let flagged = report.count(LintCode::UnsafePath) > 0;
        assert_eq!(flagged, expect_flagged, "static verdict for `{text}`");

        // Ground truth: run the same query with every check stripped and
        // count the rows that would have produced a type error.
        let plan = compile(&ctx, &sq.query, CheckMode::Never).expect(text);
        let failures = execute(&v.schema, &db.store, &plan).stats.unchecked_failures;
        assert_eq!(
            flagged,
            failures > 0,
            "`{text}`: static analysis says flagged={flagged}, \
             unchecked execution hit {failures} failure(s)"
        );
    }
}

#[test]
fn the_flagged_query_fails_once_per_exceptional_row() {
    let db = build_hospital(&HospitalParams {
        patients: 2_000,
        tubercular_fraction: 0.10,
        ..Default::default()
    });
    let v = &db.virtualized;
    let ctx = TypeContext::with_virtuals(v);
    let sq = parse_query_spanned(&v.schema, "for p in Patient emit p.treatedAt.location.state")
        .unwrap();
    let plan = compile(&ctx, &sq.query, CheckMode::Never).unwrap();
    let failures = execute(&v.schema, &db.store, &plan).stats.unchecked_failures;
    assert_eq!(
        failures,
        db.store.count(db.ids.tubercular),
        "every tubercular patient (and only those) lacks a state"
    );
}

#[test]
fn the_synthesized_guard_compiles_to_a_checkless_plan() {
    let db = build_hospital(&HospitalParams {
        patients: 500,
        ..Default::default()
    });
    let v = &db.virtualized;
    let ctx = TypeContext::with_virtuals(v);

    // The analyzer proposes the guard for the hazardous query…
    let sq = parse_query_spanned(&v.schema, "for p in Patient emit p.treatedAt.location.state")
        .unwrap();
    let report = run_queries(v, std::slice::from_ref(&sq), None, &LintConfig::new());
    let suggestion = report
        .findings
        .iter()
        .find(|f| f.code == LintCode::GuardSuggestion)
        .expect("Q005 fires");
    assert!(
        suggestion.message.contains("Tubercular_Patient"),
        "{}",
        suggestion.message
    );

    // …and the guarded form really does run with zero checks per row.
    let guarded = parse_query_spanned(
        &v.schema,
        "for p in Patient where p not in Tubercular_Patient emit p.treatedAt.location.state",
    )
    .unwrap();
    let plan = compile(&ctx, &guarded.query, CheckMode::Eliminate).unwrap();
    assert_eq!(plan.checks_per_row(), 0);
    let result = execute(&v.schema, &db.store, &plan);
    assert_eq!(result.stats.checks_executed, 0);
    assert_eq!(result.stats.unchecked_failures, 0);
}
