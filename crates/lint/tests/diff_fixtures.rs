//! Integration tests for the D-family evolution lints: each code fires
//! on a minimal old/new schema pair, the findings render into the right
//! file, and the JSON envelope tags them as `"kind": "diff"`.

use chc_lint::{render_report_sources, run_diff, LintCode, LintConfig, LintLevel};
use chc_model::Schema;

fn diff(old_src: &str, new_src: &str) -> (Schema, Schema, chc_lint::DiffReport) {
    let old = chc_sdl::compile_with_source(old_src, "old.sdl").unwrap();
    let new = chc_sdl::compile_with_source(new_src, "new.sdl").unwrap();
    let report = run_diff(&old, &new, Some("old.sdl"), &LintConfig::new());
    (old, new, report)
}

#[test]
fn d001_fires_on_a_narrowing_with_its_extent_count() {
    let (_, new, outcome) = diff(
        "class Person with age: 1..120;\nclass Employee is-a Person;\n",
        "class Person with age: 21..65;\nclass Employee is-a Person;\n",
    );
    let f = outcome
        .report
        .findings
        .iter()
        .find(|f| f.code == LintCode::BreakingNarrowing)
        .expect("D001 fires");
    assert_eq!(f.level, LintLevel::Warn);
    assert_eq!(new.class_name(f.class), "Person");
    // Both Person and Employee store objects that may now be out of range.
    assert!(f.message.contains("2 extent(s)"), "{}", f.message);
    assert!(f.file.is_none(), "D001 anchors in the new file");
    assert!(f.span.is_some());
}

#[test]
fn d002_fires_with_a_derivation_when_an_edit_introduces_a_contradiction() {
    // Old: Employee narrows Person.age (coherent). New: Person's range
    // moves away, leaving Employee's unexcused redefinition disjoint —
    // no admissible value for Employee.age remains.
    let (_, new, outcome) = diff(
        "class Person with age: 1..120;\nclass Employee is-a Person with age: 18..65;\n",
        "class Person with age: 70..120;\nclass Employee is-a Person with age: 18..65;\n",
    );
    let f = outcome
        .report
        .findings
        .iter()
        .find(|f| f.code == LintCode::ContradictionIntroduced)
        .expect("D002 fires");
    assert_eq!(new.class_name(f.class), "Employee");
    assert!(
        f.derivation.is_some(),
        "D002 justifies the incoherence with the admissibility derivation"
    );
}

#[test]
fn d003_fires_on_a_retired_excuse_and_anchors_in_the_old_file() {
    let old_src = "class Physician;\nclass Psychologist;\n\
                   class Patient with treatedBy: Physician;\n\
                   class Alcoholic is-a Patient with\n    \
                   treatedBy: Psychologist excuses treatedBy on Patient;\n";
    let new_src = "class Physician;\nclass Psychologist;\n\
                   class Patient with treatedBy: Physician;\n\
                   class Alcoholic is-a Patient with\n    treatedBy: Psychologist;\n";
    let (_, new, outcome) = diff(old_src, new_src);
    let f = outcome
        .report
        .findings
        .iter()
        .find(|f| f.code == LintCode::ExcuseRetiredOrphan)
        .expect("D003 fires");
    assert_eq!(new.class_name(f.class), "Alcoholic");
    assert_eq!(f.file.as_deref(), Some("old.sdl"));
    let span = f.span.expect("anchored at the retired clause");
    assert_eq!(span.line, 5, "points at the old excuses clause");
    // The renderer quotes the *old* source for findings carrying a file.
    let text = render_report_sources(&outcome.report, &new, Some(new_src), Some(old_src));
    assert!(text.contains("old.sdl:5:"), "{text}");
    assert!(text.contains("excuses treatedBy on Patient"), "{text}");
}

#[test]
fn d004_and_d005_are_advisory() {
    let (_, _, outcome) = diff(
        "class Person with age: 1..120;\n",
        "class Person with age: 0..130;\n",
    );
    let widened = outcome
        .report
        .findings
        .iter()
        .find(|f| f.code == LintCode::SilentWidening)
        .expect("D004 fires");
    assert_eq!(widened.level, LintLevel::Info);
    let cone = outcome
        .report
        .findings
        .iter()
        .find(|f| f.code == LintCode::ConeReport)
        .expect("D005 fires");
    assert_eq!(cone.level, LintLevel::Info);
    assert!(cone.message.contains("impact cone"), "{}", cone.message);
    assert!(outcome.report.is_ok(), "info findings never fail the run");
}

#[test]
fn severity_flags_apply_to_d_codes() {
    let old = "class Person with age: 1..120;\n";
    let new = "class Person with age: 21..65;\n";
    let o = chc_sdl::compile(old).unwrap();
    let n = chc_sdl::compile(new).unwrap();

    let mut cfg = LintConfig::new();
    cfg.set(LintCode::BreakingNarrowing, LintLevel::Allow);
    cfg.set(LintCode::ConeReport, LintLevel::Allow);
    let outcome = run_diff(&o, &n, None, &cfg);
    assert!(outcome.report.findings.is_empty());

    let mut cfg = LintConfig::new();
    cfg.deny_warnings = true;
    let outcome = run_diff(&o, &n, None, &cfg);
    assert!(!outcome.report.is_ok(), "--deny warnings escalates D001");
}

#[test]
fn diff_findings_round_trip_through_json_with_kind_diff() {
    let (_, new, outcome) = diff(
        "class Person with age: 1..120;\n",
        "class Person with age: 21..65;\n",
    );
    let json = outcome.report.to_json(&new);
    let parsed = chc_obs::json::parse(&json.render()).expect("valid JSON");
    assert_eq!(parsed, json);
    assert_eq!(
        parsed.get("schema").and_then(|v| v.as_str()),
        Some("chc-lint/1")
    );
    let findings = parsed.get("findings").and_then(|v| v.as_array()).unwrap();
    assert!(!findings.is_empty());
    for f in findings {
        assert_eq!(
            f.get("kind").and_then(|v| v.as_str()),
            Some("diff"),
            "every D finding is tagged kind=diff"
        );
        let code = f.get("code").and_then(|v| v.as_str()).unwrap();
        assert!(code.starts_with('D'), "{code}");
    }
}
