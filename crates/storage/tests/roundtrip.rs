//! Storage round-trip and edge-case tests across modules.

use chc_model::{Oid, Value};
use chc_sdl::compile;
use chc_storage::{PartitionedStore, RecordFormat, VariantStore};
use chc_workloads::rng::SplitMix64;
use chc_workloads::{build_hospital, HospitalParams};

#[test]
fn unicode_strings_round_trip() {
    let schema = compile("class Person with name: String;").unwrap();
    let person = schema.class_by_name("Person").unwrap();
    let name = schema.sym("name").unwrap();
    let mut store = chc_extent::ExtentStore::new(&schema);
    let names = ["Zürich–Straße 🏥", "", "Ω≠∅", "tab\tnewline\n"];
    let mut oids = Vec::new();
    for n in names {
        let o = store.create(&schema, &[person]);
        store.set_attr(o, name, Value::str(n));
        oids.push(o);
    }
    let part = PartitionedStore::build(&schema, &store, person, &[]).unwrap();
    let variant = VariantStore::build(&schema, &store, person);
    for (o, n) in oids.iter().zip(names) {
        assert_eq!(part.fetch_directory(*o, name).value, Some(Value::str(n)));
        assert_eq!(variant.fetch(*o, name).value, Some(Value::str(n)));
    }
}

#[test]
fn record_valued_attributes_round_trip() {
    let schema = compile(
        "class Person with home: [street: String; zip: 10000..99999];",
    )
    .unwrap();
    let person = schema.class_by_name("Person").unwrap();
    let home = schema.sym("home").unwrap();
    let street = schema.sym("street").unwrap();
    let zip = schema.sym("zip").unwrap();
    let mut store = chc_extent::ExtentStore::new(&schema);
    let o = store.create(&schema, &[person]);
    let value = Value::record(vec![
        (street, Value::str("Main St")),
        (zip, Value::Int(12345)),
    ]);
    store.set_attr(o, home, value.clone());
    let part = PartitionedStore::build(&schema, &store, person, &[]).unwrap();
    assert_eq!(part.fetch_directory(o, home).value, Some(value.clone()));
    let variant = VariantStore::build(&schema, &store, person);
    assert_eq!(variant.fetch(o, home).value, Some(value));
}

#[test]
fn empty_store_builds_empty_layouts() {
    let schema = compile("class Person with name: String;").unwrap();
    let person = schema.class_by_name("Person").unwrap();
    let store = chc_extent::ExtentStore::new(&schema);
    let part = PartitionedStore::build(&schema, &store, person, &[]).unwrap();
    assert_eq!(part.num_fragments(), 0);
    assert_eq!(part.byte_len(), 0);
    let name = schema.sym("name").unwrap();
    assert_eq!(part.fetch_scan(Oid::from_raw(0), name).value, None);
}

#[test]
fn formats_are_deterministic() {
    let schema = compile(
        "
        class Person with name: String; age: 1..120;
        class Patient is-a Person with acuity: {'Low, 'High};
        ",
    )
    .unwrap();
    let patient = schema.class_by_name("Patient").unwrap();
    let f1 = RecordFormat::for_classes(&schema, &[patient]);
    let f2 = RecordFormat::for_classes(&schema, &[patient]);
    assert_eq!(f1, f2);
    assert!(f1.compatible_with(&f2));
}

/// Partitioned and variant layouts agree with the live store on every
/// attribute of every patient, across 12 random seed/ε mixes.
#[test]
fn layouts_agree_with_store() {
    let mut rng = SplitMix64::new(0x5708A6E);
    for _ in 0..12 {
        let seed = rng.gen_range_i64(0, 49) as u64;
        let eps = rng.gen_f64() * 0.4;
        let db = build_hospital(&HospitalParams {
            patients: 120,
            tubercular_fraction: eps,
            alcoholic_fraction: eps / 2.0,
            ambulatory_fraction: eps / 2.0,
            seed,
            ..Default::default()
        });
        let s = &db.virtualized.schema;
        let exceptional = [db.ids.tubercular, db.ids.alcoholic, db.ids.ambulatory];
        let part = PartitionedStore::build(s, &db.store, db.ids.patient, &exceptional).unwrap();
        let variant = VariantStore::build(s, &db.store, db.ids.patient);
        for &p in &db.patients {
            for attr in [db.ids.name, db.ids.age, db.ids.treated_by, db.ids.treated_at, db.ids.ward]
            {
                let expect = db.store.get_attr(p, attr).cloned();
                assert_eq!(part.fetch_directory(p, attr).value, expect.clone());
                assert_eq!(part.fetch_scan(p, attr).value, expect.clone());
                assert_eq!(variant.fetch(p, attr).value, expect);
            }
        }
    }
}
