//! # chc-storage — the §5.5 storage substrate
//!
//! Semantic-grouping logical records ([`RecordFormat`]), byte-level codecs
//! for homogeneous and self-describing rows ([`codec`]), row fragments
//! ([`Fragment`]), and the two storage layouts the paper weighs:
//! horizontal partitioning with type-guided file search
//! ([`PartitionedStore`]) versus a single table of variant records
//! ([`VariantStore`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod engine;
pub mod fragment;
pub mod persist;
pub mod record;

pub use codec::CodecError;
pub use engine::{Fetched, PartitionedStore, VariantStore};
pub use fragment::Fragment;
pub use persist::PersistError;
pub use record::{kind_of_range, FieldKind, RecordFormat};
