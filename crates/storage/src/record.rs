//! Logical record formats — the "semantic grouping" of Daplex (§5.5).
//!
//! "A standard technique for storing information about objects is to
//! create logical records which have as fields the attributes defined on
//! some class." A [`RecordFormat`] lists, per attribute, the *kind* of
//! value stored. Kinds matter because §5.5's difficulty is precisely
//! "some attribute may be filled by values from incompatible types
//! (INTEGER vs. ENTITY vs. String vs. various enumerations …), where we
//! run the problem of having different values with indistinguishable
//! bit-string representations, or widely differing storage requirements."

use chc_model::{ClassId, Range, Schema, Sym};

/// The physical kind of an attribute's values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldKind {
    /// 64-bit integer.
    Int,
    /// Enumeration token (stored as a 32-bit symbol index).
    Tok,
    /// Variable-length string.
    Str,
    /// Entity reference (64-bit surrogate) — §5.5: "entities are assigned
    /// internal identifiers (surrogates) by the system and these do not
    /// normally vary structurally from class to class."
    Surrogate,
    /// Record value (nested tuple structure), encoded recursively.
    Tuple,
    /// The attribute is inapplicable (`None` range): zero storage.
    Missing,
}

/// The kind a range stores.
pub fn kind_of_range(range: &Range) -> FieldKind {
    match range {
        Range::Int { .. } => FieldKind::Int,
        Range::Enum(_) => FieldKind::Tok,
        Range::Str => FieldKind::Str,
        Range::Class(_) | Range::AnyEntity | Range::Record { base: Some(_), .. } => {
            FieldKind::Surrogate
        }
        Range::Record { base: None, .. } => FieldKind::Tuple,
        Range::None => FieldKind::Missing,
    }
}

/// A record format: the attributes stored for instances of a class
/// signature, with their kinds, sorted by attribute symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordFormat {
    /// `(attribute, kind)` pairs, sorted by attribute.
    pub fields: Vec<(Sym, FieldKind)>,
}

impl RecordFormat {
    /// The storage format for an object whose most specific classes are
    /// `classes` (an object may belong to several, §4.1): each applicable
    /// attribute with its *most specific* kind. When two memberships give
    /// incompatible kinds, the excuser's (more specific class's) kind
    /// wins; the §5.2 semantics guarantees stored values obey one of them.
    pub fn for_classes(schema: &Schema, classes: &[ClassId]) -> RecordFormat {
        let mut fields: Vec<(Sym, FieldKind)> = Vec::new();
        for &class in classes {
            for attr in schema.applicable_attrs(class) {
                // Most specific declaration along this class's ancestry: a
                // declarer no other declarer is a strict subclass of.
                let constraints = schema.constraints_on(class, attr);
                let kind = constraints
                    .iter()
                    .find(|(b, _)| {
                        !constraints
                            .iter()
                            .any(|(other, _)| other != b && schema.is_strict_subclass(*other, *b))
                    })
                    .map(|(_, spec)| kind_of_range(&spec.range))
                    .expect("applicable attr has a declaration");
                match fields.iter_mut().find(|(a, _)| *a == attr) {
                    Some((_, existing)) => {
                        // Prefer the more specific (later class) kind; a
                        // Missing kind (excused None) always wins — the
                        // attribute is simply not stored.
                        if kind == FieldKind::Missing || *existing == FieldKind::Missing {
                            *existing = FieldKind::Missing;
                        } else {
                            *existing = kind;
                        }
                    }
                    None => fields.push((attr, kind)),
                }
            }
        }
        fields.sort_by_key(|(a, _)| *a);
        RecordFormat { fields }
    }

    /// The kind stored for `attr`, if the format has the field.
    pub fn kind_of(&self, attr: Sym) -> Option<FieldKind> {
        self.fields
            .binary_search_by_key(&attr, |(a, _)| *a)
            .ok()
            .map(|i| self.fields[i].1)
    }

    /// Whether two formats are bit-compatible (§5.5: partitioning is only
    /// *needed* when they are not).
    pub fn compatible_with(&self, other: &RecordFormat) -> bool {
        // Compatible iff every shared field has the same kind.
        self.fields.iter().all(|(a, k)| match other.kind_of(*a) {
            Some(ok) => ok == *k,
            None => true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chc_sdl::compile;

    #[test]
    fn format_collects_applicable_attrs_with_kinds() {
        let s = compile(
            "
            class Hospital;
            class Person with name: String; age: 1..120;
            class Patient is-a Person with treatedAt: Hospital; acuity: {'Low, 'High};
            ",
        )
        .unwrap();
        let patient = s.class_by_name("Patient").unwrap();
        let f = RecordFormat::for_classes(&s, &[patient]);
        assert_eq!(f.kind_of(s.sym("name").unwrap()), Some(FieldKind::Str));
        assert_eq!(f.kind_of(s.sym("age").unwrap()), Some(FieldKind::Int));
        assert_eq!(f.kind_of(s.sym("treatedAt").unwrap()), Some(FieldKind::Surrogate));
        assert_eq!(f.kind_of(s.sym("acuity").unwrap()), Some(FieldKind::Tok));
        assert_eq!(f.fields.len(), 4);
    }

    #[test]
    fn excused_none_drops_the_field() {
        let s = compile(
            "
            class Employee with salary: Integer;
            class Temporary is-a Employee with
                salary: None excuses salary on Employee;
                lumpSum: Integer;
            ",
        )
        .unwrap();
        let temp = s.class_by_name("Temporary").unwrap();
        let employee = s.class_by_name("Employee").unwrap();
        let salary = s.sym("salary").unwrap();
        let femp = RecordFormat::for_classes(&s, &[employee]);
        let ftemp = RecordFormat::for_classes(&s, &[temp]);
        assert_eq!(femp.kind_of(salary), Some(FieldKind::Int));
        assert_eq!(ftemp.kind_of(salary), Some(FieldKind::Missing));
        // Int vs Missing on the same attribute ⇒ incompatible formats ⇒
        // horizontal partitioning required (§5.5).
        assert!(!femp.compatible_with(&ftemp));
    }

    #[test]
    fn entity_valued_exceptions_stay_compatible() {
        // §5.5: "nothing new needs to be done as far as storage in dealing
        // with cases like the treatedBy attribute" — both ranges are
        // entities, so both store surrogates.
        let s = compile(
            "
            class Physician;
            class Psychologist;
            class Patient with treatedBy: Physician;
            class Alcoholic is-a Patient with
                treatedBy: Psychologist excuses treatedBy on Patient;
            ",
        )
        .unwrap();
        let patient = s.class_by_name("Patient").unwrap();
        let alcoholic = s.class_by_name("Alcoholic").unwrap();
        let fp = RecordFormat::for_classes(&s, &[patient]);
        let fa = RecordFormat::for_classes(&s, &[alcoholic]);
        assert!(fp.compatible_with(&fa));
        assert_eq!(
            fa.kind_of(s.sym("treatedBy").unwrap()),
            Some(FieldKind::Surrogate)
        );
    }

    #[test]
    fn multiple_membership_merges_formats() {
        let s = compile(
            "
            class A with x: 1..10;
            class B with y: String;
            ",
        )
        .unwrap();
        let a = s.class_by_name("A").unwrap();
        let b = s.class_by_name("B").unwrap();
        let f = RecordFormat::for_classes(&s, &[a, b]);
        assert_eq!(f.fields.len(), 2);
    }
}
