//! Byte-level row encoding.
//!
//! Two codecs, matching §5.5's two layouts:
//!
//! * [`encode_fixed`]/[`decode_fixed`] — a format-directed codec: the
//!   [`RecordFormat`] fixes each field's kind, so no per-value tags are
//!   stored (strings and tuples are length-prefixed). This is the codec of
//!   a homogeneous fragment.
//! * [`encode_variant`]/[`decode_variant`] — a self-describing codec with
//!   a tag byte per field, for the single-table layout where "different
//!   values with indistinguishable bit-string representations" would
//!   otherwise collide.

use chc_model::{Oid, Sym, Value};

use crate::record::{FieldKind, RecordFormat};

/// A decoding failure (corrupt bytes or format mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended prematurely.
    Truncated,
    /// A tag byte was not recognized.
    BadTag(u8),
    /// A stored value's kind contradicts the format.
    KindMismatch,
    /// Trailing bytes after a complete row.
    TrailingBytes,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "row bytes truncated"),
            CodecError::BadTag(t) => write!(f, "unrecognized value tag {t:#x}"),
            CodecError::KindMismatch => write!(f, "value kind contradicts record format"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after row"),
        }
    }
}

impl std::error::Error for CodecError {}

const PRESENT: u8 = 1;
const ABSENT: u8 = 0;

/// Encodes a row under a fixed format. `values` supplies the value per
/// attribute (missing entries encode as absent). Fields of kind
/// [`FieldKind::Missing`] store only a zero presence byte.
pub fn encode_fixed(
    format: &RecordFormat,
    mut lookup: impl FnMut(Sym) -> Option<Value>,
    out: &mut Vec<u8>,
) -> Result<(), CodecError> {
    for &(attr, kind) in &format.fields {
        match lookup(attr) {
            None | Some(Value::Absent) => out.push(ABSENT),
            Some(v) => {
                out.push(PRESENT);
                encode_payload(kind, &v, out)?;
            }
        }
    }
    Ok(())
}

fn encode_payload(kind: FieldKind, v: &Value, out: &mut Vec<u8>) -> Result<(), CodecError> {
    match (kind, v) {
        (FieldKind::Int, Value::Int(i)) => out.extend_from_slice(&i.to_le_bytes()),
        (FieldKind::Tok, Value::Tok(s)) => {
            out.extend_from_slice(&(s.index() as u32).to_le_bytes())
        }
        (FieldKind::Surrogate, Value::Obj(o)) => out.extend_from_slice(&o.raw().to_le_bytes()),
        (FieldKind::Str, Value::Str(s)) => {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        (FieldKind::Tuple, Value::Record(fields)) => {
            out.extend_from_slice(&(fields.len() as u32).to_le_bytes());
            for (name, value) in fields.iter() {
                out.extend_from_slice(&(name.index() as u32).to_le_bytes());
                encode_variant_value(value, out);
            }
        }
        _ => return Err(CodecError::KindMismatch),
    }
    Ok(())
}

/// Decodes a fixed-format row into `(attr, value)` pairs (absent fields
/// omitted).
pub fn decode_fixed(
    format: &RecordFormat,
    bytes: &[u8],
    resolve_sym: impl Fn(u32) -> Sym + Copy,
) -> Result<Vec<(Sym, Value)>, CodecError> {
    let mut at = 0usize;
    let mut out = Vec::new();
    for &(attr, kind) in &format.fields {
        let presence = *bytes.get(at).ok_or(CodecError::Truncated)?;
        at += 1;
        if presence == ABSENT {
            continue;
        }
        let v = decode_payload(kind, bytes, &mut at, resolve_sym)?;
        out.push((attr, v));
    }
    if at != bytes.len() {
        return Err(CodecError::TrailingBytes);
    }
    Ok(out)
}

fn decode_payload(
    kind: FieldKind,
    bytes: &[u8],
    at: &mut usize,
    resolve_sym: impl Fn(u32) -> Sym + Copy,
) -> Result<Value, CodecError> {
    match kind {
        FieldKind::Int => Ok(Value::Int(i64::from_le_bytes(take(bytes, at)?))),
        FieldKind::Tok => {
            let raw = u32::from_le_bytes(take(bytes, at)?);
            Ok(Value::Tok(resolve_sym(raw)))
        }
        FieldKind::Surrogate => Ok(Value::Obj(Oid::from_raw(u64::from_le_bytes(take(bytes, at)?)))),
        FieldKind::Str => {
            let len = u32::from_le_bytes(take(bytes, at)?) as usize;
            let s = bytes.get(*at..*at + len).ok_or(CodecError::Truncated)?;
            *at += len;
            Ok(Value::Str(String::from_utf8_lossy(s).into_owned().into()))
        }
        FieldKind::Tuple => {
            let n = u32::from_le_bytes(take(bytes, at)?) as usize;
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                let name = resolve_sym(u32::from_le_bytes(take(bytes, at)?));
                let v = decode_variant_value(bytes, at, resolve_sym)?;
                fields.push((name, v));
            }
            Ok(Value::record(fields))
        }
        FieldKind::Missing => Err(CodecError::KindMismatch),
    }
}

fn take<const N: usize>(bytes: &[u8], at: &mut usize) -> Result<[u8; N], CodecError> {
    let s = bytes.get(*at..*at + N).ok_or(CodecError::Truncated)?;
    *at += N;
    Ok(s.try_into().expect("slice length checked"))
}

// ---- self-describing (variant) codec ----

const TAG_INT: u8 = 0x10;
const TAG_TOK: u8 = 0x11;
const TAG_STR: u8 = 0x12;
const TAG_OBJ: u8 = 0x13;
const TAG_REC: u8 = 0x14;
const TAG_ABSENT: u8 = 0x15;

/// Encodes one value with a leading tag byte.
pub fn encode_variant_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Tok(s) => {
            out.push(TAG_TOK);
            out.extend_from_slice(&(s.index() as u32).to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Obj(o) => {
            out.push(TAG_OBJ);
            out.extend_from_slice(&o.raw().to_le_bytes());
        }
        Value::Record(fields) => {
            out.push(TAG_REC);
            out.extend_from_slice(&(fields.len() as u32).to_le_bytes());
            for (name, value) in fields.iter() {
                out.extend_from_slice(&(name.index() as u32).to_le_bytes());
                encode_variant_value(value, out);
            }
        }
        Value::Absent => out.push(TAG_ABSENT),
    }
}

/// Decodes one tagged value.
pub fn decode_variant_value(
    bytes: &[u8],
    at: &mut usize,
    resolve_sym: impl Fn(u32) -> Sym + Copy,
) -> Result<Value, CodecError> {
    let tag = *bytes.get(*at).ok_or(CodecError::Truncated)?;
    *at += 1;
    match tag {
        TAG_INT => Ok(Value::Int(i64::from_le_bytes(take(bytes, at)?))),
        TAG_TOK => Ok(Value::Tok(resolve_sym(u32::from_le_bytes(take(bytes, at)?)))),
        TAG_STR => {
            let len = u32::from_le_bytes(take(bytes, at)?) as usize;
            let s = bytes.get(*at..*at + len).ok_or(CodecError::Truncated)?;
            *at += len;
            Ok(Value::Str(String::from_utf8_lossy(s).into_owned().into()))
        }
        TAG_OBJ => Ok(Value::Obj(Oid::from_raw(u64::from_le_bytes(take(bytes, at)?)))),
        TAG_REC => {
            let n = u32::from_le_bytes(take(bytes, at)?) as usize;
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                let name = resolve_sym(u32::from_le_bytes(take(bytes, at)?));
                let v = decode_variant_value(bytes, at, resolve_sym)?;
                fields.push((name, v));
            }
            Ok(Value::record(fields))
        }
        TAG_ABSENT => Ok(Value::Absent),
        other => Err(CodecError::BadTag(other)),
    }
}

/// Encodes a whole row self-describingly: field count, then
/// `(sym, tagged value)` pairs.
pub fn encode_variant(fields: &[(Sym, Value)], out: &mut Vec<u8>) {
    out.extend_from_slice(&(fields.len() as u32).to_le_bytes());
    for (name, value) in fields {
        out.extend_from_slice(&(name.index() as u32).to_le_bytes());
        encode_variant_value(value, out);
    }
}

/// Decodes a self-describing row.
pub fn decode_variant(
    bytes: &[u8],
    resolve_sym: impl Fn(u32) -> Sym + Copy,
) -> Result<Vec<(Sym, Value)>, CodecError> {
    let mut at = 0usize;
    let n = u32::from_le_bytes(take(bytes, &mut at)?) as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let name = resolve_sym(u32::from_le_bytes(take(bytes, &mut at)?));
        let v = decode_variant_value(bytes, &mut at, resolve_sym)?;
        out.push((name, v));
    }
    if at != bytes.len() {
        return Err(CodecError::TrailingBytes);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chc_model::{Interner, SchemaBuilder};

    fn syms(n: usize) -> (Interner, Vec<Sym>) {
        let mut i = Interner::new();
        let syms = (0..n).map(|k| i.intern(&format!("s{k}"))).collect();
        (i, syms)
    }

    #[test]
    fn fixed_round_trip_all_kinds() {
        let (_, s) = syms(6);
        let format = RecordFormat {
            fields: {
                let mut f = vec![
                    (s[0], FieldKind::Int),
                    (s[1], FieldKind::Tok),
                    (s[2], FieldKind::Str),
                    (s[3], FieldKind::Surrogate),
                    (s[4], FieldKind::Missing),
                    (s[5], FieldKind::Tuple),
                ];
                f.sort_by_key(|(a, _)| *a);
                f
            },
        };
        let tuple = Value::record(vec![(s[0], Value::Int(1)), (s[1], Value::str("x"))]);
        let values = vec![
            (s[0], Value::Int(-42)),
            (s[1], Value::Tok(s[2])),
            (s[2], Value::str("hello")),
            (s[3], Value::Obj(Oid::from_raw(99))),
            (s[5], tuple.clone()),
        ];
        let mut bytes = Vec::new();
        encode_fixed(
            &format,
            |a| values.iter().find(|(n, _)| *n == a).map(|(_, v)| v.clone()),
            &mut bytes,
        )
        .unwrap();
        let resolve = |raw: u32| s[raw as usize];
        let decoded = decode_fixed(&format, &bytes, resolve).unwrap();
        let mut expect = values.clone();
        expect.sort_by_key(|(a, _)| *a);
        assert_eq!(decoded, expect);
    }

    #[test]
    fn kind_mismatch_rejected_at_encode() {
        let (_, s) = syms(1);
        let format = RecordFormat { fields: vec![(s[0], FieldKind::Int)] };
        let mut out = Vec::new();
        let err = encode_fixed(&format, |_| Some(Value::str("oops")), &mut out);
        assert_eq!(err, Err(CodecError::KindMismatch));
    }

    #[test]
    fn truncated_and_trailing_bytes_detected() {
        let (_, s) = syms(1);
        let format = RecordFormat { fields: vec![(s[0], FieldKind::Int)] };
        let mut bytes = Vec::new();
        encode_fixed(&format, |_| Some(Value::Int(7)), &mut bytes).unwrap();
        let resolve = |raw: u32| s[raw as usize];
        assert_eq!(
            decode_fixed(&format, &bytes[..bytes.len() - 1], resolve),
            Err(CodecError::Truncated)
        );
        let mut extra = bytes.clone();
        extra.push(0);
        assert_eq!(decode_fixed(&format, &extra, resolve), Err(CodecError::TrailingBytes));
    }

    #[test]
    fn variant_round_trip() {
        let (_, s) = syms(3);
        let row = vec![
            (s[0], Value::Absent),
            (s[1], Value::Int(5)),
            (s[2], Value::record(vec![(s[0], Value::Obj(Oid::from_raw(1)))])),
        ];
        let mut bytes = Vec::new();
        encode_variant(&row, &mut bytes);
        let resolve = |raw: u32| s[raw as usize];
        assert_eq!(decode_variant(&bytes, resolve).unwrap(), row);
    }

    #[test]
    fn bad_tag_rejected() {
        let (_, s) = syms(1);
        let bytes = [1u32.to_le_bytes().as_slice(), &0u32.to_le_bytes(), &[0xFF]].concat();
        let resolve = |raw: u32| s[raw as usize];
        assert_eq!(decode_variant(&bytes, resolve), Err(CodecError::BadTag(0xFF)));
    }

    // Randomized round-trip coverage, driven by the workspace's seeded
    // PRNG (the build is offline, so no proptest).

    fn random_string(rng: &mut chc_workloads::rng::SplitMix64) -> String {
        let len = rng.gen_range(0, 24);
        (0..len)
            .map(|_| {
                // Mix ASCII, escapes, and multi-byte scalars.
                match rng.gen_range(0, 3) {
                    0 => char::from(rng.gen_range(0x20, 0x7E) as u8),
                    1 => ['\0', '\n', '"', '\\', '\u{7f}'][rng.gen_range(0, 4)],
                    _ => char::from_u32(rng.gen_range(0x80, 0x2FFF) as u32).unwrap_or('é'),
                }
            })
            .collect()
    }

    #[test]
    fn prop_variant_round_trips() {
        let mut rng = chc_workloads::rng::SplitMix64::new(0xC0DEC);
        for _ in 0..256 {
            let mut b = SchemaBuilder::new();
            let mut row: Vec<(Sym, Value)> = Vec::new();
            let mut all_syms = Vec::new();
            for k in 0..rng.gen_range(0, 7) {
                let sym = b.intern(&format!("i{k}"));
                all_syms.push(sym);
                row.push((sym, Value::Int(rng.next_u64() as i64)));
            }
            for k in 0..rng.gen_range(0, 7) {
                let sym = b.intern(&format!("s{k}"));
                all_syms.push(sym);
                let s = random_string(&mut rng);
                row.push((sym, Value::str(&s)));
            }
            let mut bytes = Vec::new();
            encode_variant(&row, &mut bytes);
            // Symbol indexes are dense from 0, so resolve via position.
            let resolve = |raw: u32| all_syms[raw as usize];
            assert_eq!(decode_variant(&bytes, resolve).unwrap(), row);
        }
    }

    #[test]
    fn prop_fixed_round_trips_ints() {
        let mut rng = chc_workloads::rng::SplitMix64::new(0xF1C5ED);
        for _ in 0..256 {
            let vals: Vec<Option<i64>> = (0..rng.gen_range(1, 9))
                .map(|_| rng.gen_bool(0.7).then(|| rng.next_u64() as i64))
                .collect();
            let mut b = SchemaBuilder::new();
            let syms: Vec<Sym> = (0..vals.len()).map(|k| b.intern(&format!("f{k}"))).collect();
            let format = RecordFormat {
                fields: syms.iter().map(|&s| (s, FieldKind::Int)).collect(),
            };
            let mut bytes = Vec::new();
            encode_fixed(
                &format,
                |a| {
                    let idx = syms.iter().position(|&s| s == a).unwrap();
                    vals[idx].map(Value::Int)
                },
                &mut bytes,
            )
            .unwrap();
            let resolve = |raw: u32| syms[raw as usize];
            let decoded = decode_fixed(&format, &bytes, resolve).unwrap();
            let expect: Vec<(Sym, Value)> = syms
                .iter()
                .zip(&vals)
                .filter_map(|(&s, v)| v.map(|i| (s, Value::Int(i))))
                .collect();
            assert_eq!(decoded, expect);
        }
    }
}
