//! Homogeneous row fragments — the "logical files with a distinct record
//! format" of §5.5's horizontal partitioning.

use std::collections::HashMap;

use chc_model::{Oid, Sym, Value};

use crate::codec::{decode_fixed, encode_fixed, CodecError};
use crate::record::RecordFormat;

/// One fragment: a byte heap of fixed-format rows plus an oid directory.
#[derive(Debug, Clone)]
pub struct Fragment {
    /// The single record format of every row in this fragment.
    pub format: RecordFormat,
    bytes: Vec<u8>,
    directory: HashMap<Oid, (usize, usize)>,
    order: Vec<Oid>,
}

impl Fragment {
    /// An empty fragment with the given format.
    pub fn new(format: RecordFormat) -> Self {
        Fragment { format, bytes: Vec::new(), directory: HashMap::new(), order: Vec::new() }
    }

    /// Appends a row for `oid` built from `lookup`.
    pub fn insert(
        &mut self,
        oid: Oid,
        lookup: impl FnMut(Sym) -> Option<Value>,
    ) -> Result<(), CodecError> {
        let start = self.bytes.len();
        encode_fixed(&self.format, lookup, &mut self.bytes)?;
        self.directory.insert(oid, (start, self.bytes.len() - start));
        self.order.push(oid);
        Ok(())
    }

    /// Whether the fragment holds a row for `oid` (one hash probe — the
    /// unit of work experiment E6 counts).
    pub fn contains(&self, oid: Oid) -> bool {
        self.directory.contains_key(&oid)
    }

    /// Decodes the full row for `oid`.
    pub fn get(
        &self,
        oid: Oid,
        resolve_sym: impl Fn(u32) -> Sym + Copy,
    ) -> Option<Result<Vec<(Sym, Value)>, CodecError>> {
        let &(start, len) = self.directory.get(&oid)?;
        Some(decode_fixed(&self.format, &self.bytes[start..start + len], resolve_sym))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the fragment is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Total encoded size in bytes.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Scans all rows in insertion order.
    pub fn scan<'a>(
        &'a self,
        resolve_sym: impl Fn(u32) -> Sym + Copy + 'a,
    ) -> impl Iterator<Item = (Oid, Result<Vec<(Sym, Value)>, CodecError>)> + 'a {
        self.order.iter().map(move |&oid| {
            let row = self.get(oid, resolve_sym).expect("oid in order is in directory");
            (oid, row)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::FieldKind;
    use chc_model::SchemaBuilder;

    #[test]
    fn insert_get_scan() {
        let mut b = SchemaBuilder::new();
        let age = b.intern("age");
        let name = b.intern("name");
        let mut fields = vec![(age, FieldKind::Int), (name, FieldKind::Str)];
        fields.sort_by_key(|(a, _)| *a);
        let mut frag = Fragment::new(RecordFormat { fields });
        let syms = [age, name];
        let resolve = move |raw: u32| syms.iter().copied().find(|s| s.index() == raw as usize).unwrap();
        for i in 0..10u64 {
            frag.insert(Oid::from_raw(i), |a| {
                if a == age {
                    Some(Value::Int(i as i64 + 20))
                } else {
                    Some(Value::str(&format!("p{i}")))
                }
            })
            .unwrap();
        }
        assert_eq!(frag.len(), 10);
        assert!(frag.contains(Oid::from_raw(3)));
        assert!(!frag.contains(Oid::from_raw(99)));
        let row = frag.get(Oid::from_raw(3), resolve).unwrap().unwrap();
        assert!(row.contains(&(age, Value::Int(23))));
        assert_eq!(frag.scan(resolve).count(), 10);
        assert!(frag.byte_len() > 0);
    }
}
