//! The storage engine: horizontal partitioning vs. a single variant table.
//!
//! §5.5: "the obvious solution is to perform some form of 'horizontal
//! partitioning': store objects in the exceptional subclass in a logical
//! file with a distinct record format. […] This does imply that it is no
//! longer possible to associate with every attribute a single table where
//! all its values are stored. However, once again the type deduction
//! algorithm can then help reduce the run-time search for the file where
//! some particular object's attribute value is located."
//!
//! [`PartitionedStore`] implements the partitioning with three fetch
//! strategies (full scan, type-guided, and an oracle directory);
//! [`VariantStore`] implements the rejected single-table layout with
//! self-describing rows. Experiment E6 compares them.

use std::collections::HashMap;

use chc_extent::ExtentStore;
use chc_model::{ClassId, Oid, Schema, Sym, Value};

use crate::codec::{decode_variant, encode_variant, CodecError};
use crate::fragment::Fragment;
use crate::record::RecordFormat;

fn resolve_sym(raw: u32) -> Sym {
    Sym::from_raw(raw)
}

/// A fetch outcome plus the number of fragment probes it cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fetched {
    /// The value, if the object stores the attribute.
    pub value: Option<Value>,
    /// Fragment probes performed (hash lookups across logical files).
    pub probes: usize,
}

/// Horizontally partitioned storage: one fragment per *exceptionality
/// signature* (the subset of exceptional classes an object belongs to).
#[derive(Debug, Clone)]
pub struct PartitionedStore {
    /// The exceptional classes that drive partitioning.
    pub exceptional: Vec<ClassId>,
    fragments: Vec<(Vec<ClassId>, Fragment)>,
    directory: HashMap<Oid, usize>,
}

impl PartitionedStore {
    /// Materializes every instance of `root` from `store`, partitioned by
    /// which of `exceptional` classes each belongs to.
    pub fn build(
        schema: &Schema,
        store: &ExtentStore,
        root: ClassId,
        exceptional: &[ClassId],
    ) -> Result<PartitionedStore, CodecError> {
        let _span = chc_obs::span(chc_obs::names::SPAN_STORAGE_BUILD);
        let mut out = PartitionedStore {
            exceptional: exceptional.to_vec(),
            fragments: Vec::new(),
            directory: HashMap::new(),
        };
        for oid in store.extent(root) {
            let mut signature: Vec<ClassId> = exceptional
                .iter()
                .copied()
                .filter(|&c| store.is_member(oid, c))
                .collect();
            signature.sort();
            let idx = match out.fragments.iter().position(|(sig, _)| *sig == signature) {
                Some(i) => i,
                None => {
                    let mut classes = vec![root];
                    classes.extend(signature.iter().copied());
                    let format = RecordFormat::for_classes(schema, &classes);
                    out.fragments.push((signature.clone(), Fragment::new(format)));
                    out.fragments.len() - 1
                }
            };
            out.fragments[idx]
                .1
                .insert(oid, |attr| store.get_attr(oid, attr).cloned())?;
            out.directory.insert(oid, idx);
        }
        Ok(out)
    }

    /// Number of fragments (logical files).
    pub fn num_fragments(&self) -> usize {
        self.fragments.len()
    }

    /// An empty store with the given partitioning classes (used by the
    /// persistence loader).
    pub(crate) fn empty(exceptional: Vec<ClassId>) -> PartitionedStore {
        PartitionedStore { exceptional, fragments: Vec::new(), directory: HashMap::new() }
    }

    /// Appends a loaded fragment, indexing its rows in the directory.
    pub(crate) fn push_fragment(&mut self, signature: Vec<ClassId>, frag: Fragment) {
        let idx = self.fragments.len();
        for (oid, _) in frag.scan(Sym::from_raw) {
            self.directory.insert(oid, idx);
        }
        self.fragments.push((signature, frag));
    }

    /// The fragments with their signatures (persistence support).
    pub(crate) fn fragments_for_persist(&self) -> &[(Vec<ClassId>, Fragment)] {
        &self.fragments
    }

    /// Rows per fragment, for reporting.
    pub fn fragment_sizes(&self) -> Vec<(usize, usize)> {
        self.fragments
            .iter()
            .enumerate()
            .map(|(i, (_, f))| (i, f.len()))
            .collect()
    }

    /// Total encoded bytes.
    pub fn byte_len(&self) -> usize {
        self.fragments.iter().map(|(_, f)| f.byte_len()).sum()
    }

    fn read(&self, frag: &Fragment, oid: Oid, attr: Sym) -> Option<Value> {
        let row = frag.get(oid, resolve_sym)?.ok()?;
        row.into_iter().find(|(a, _)| *a == attr).map(|(_, v)| v)
    }

    /// Fetches with no type information: probe fragments in order until
    /// the object is found.
    pub fn fetch_scan(&self, oid: Oid, attr: Sym) -> Fetched {
        let mut probes = 0;
        for (_, frag) in &self.fragments {
            probes += 1;
            if frag.contains(oid) {
                chc_obs::counter(chc_obs::names::STORAGE_FRAGMENTS_PROBED, probes as u64);
                return Fetched { value: self.read(frag, oid, attr), probes };
            }
        }
        chc_obs::counter(chc_obs::names::STORAGE_FRAGMENTS_PROBED, probes as u64);
        Fetched { value: None, probes }
    }

    /// Fetches guided by type-deduced membership facts: fragments whose
    /// signature is incompatible with what is known about the object are
    /// skipped without probing.
    pub fn fetch_guided(
        &self,
        oid: Oid,
        attr: Sym,
        known_in: &[ClassId],
        known_not_in: &[ClassId],
    ) -> Fetched {
        let mut probes = 0;
        let mut skipped = 0u64;
        for (sig, frag) in &self.fragments {
            let compatible = known_not_in.iter().all(|c| !sig.contains(c))
                && known_in
                    .iter()
                    .filter(|c| self.exceptional.contains(c))
                    .all(|c| sig.contains(c));
            if !compatible {
                skipped += 1;
                continue;
            }
            probes += 1;
            if frag.contains(oid) {
                if chc_obs::enabled() {
                    chc_obs::counter(chc_obs::names::STORAGE_FRAGMENTS_PROBED, probes as u64);
                    chc_obs::counter(chc_obs::names::STORAGE_FRAGMENTS_SKIPPED, skipped);
                }
                return Fetched { value: self.read(frag, oid, attr), probes };
            }
        }
        if chc_obs::enabled() {
            chc_obs::counter(chc_obs::names::STORAGE_FRAGMENTS_PROBED, probes as u64);
            chc_obs::counter(chc_obs::names::STORAGE_FRAGMENTS_SKIPPED, skipped);
        }
        Fetched { value: None, probes }
    }

    /// Fetches through an exact oid→fragment directory (the lower bound a
    /// perfect index achieves; guided fetches approach it as knowledge
    /// grows).
    pub fn fetch_directory(&self, oid: Oid, attr: Sym) -> Fetched {
        chc_obs::counter(chc_obs::names::STORAGE_FRAGMENTS_PROBED, 1);
        match self.directory.get(&oid) {
            Some(&idx) => Fetched {
                value: self.read(&self.fragments[idx].1, oid, attr),
                probes: 1,
            },
            None => Fetched { value: None, probes: 1 },
        }
    }
}

/// The rejected alternative: one table whose rows are self-describing
/// variant records (tag bytes everywhere, §5.5's "indistinguishable
/// bit-string representations" problem solved by paying per-value tags).
#[derive(Debug, Clone)]
pub struct VariantStore {
    bytes: Vec<u8>,
    directory: HashMap<Oid, (usize, usize)>,
}

impl VariantStore {
    /// Materializes every instance of `root` into one variant table.
    pub fn build(schema: &Schema, store: &ExtentStore, root: ClassId) -> VariantStore {
        let mut out = VariantStore { bytes: Vec::new(), directory: HashMap::new() };
        for oid in store.extent(root) {
            let mut row: Vec<(Sym, Value)> = Vec::new();
            for attr in schema.applicable_attrs(root) {
                if let Some(v) = store.get_attr(oid, attr) {
                    row.push((attr, v.clone()));
                }
            }
            // Exceptional subclasses may store attrs the root never
            // declares (lumpSum, country); sweep the object's classes.
            for class in store.classes_of(oid) {
                for attr in schema.applicable_attrs(class) {
                    if row.iter().all(|(a, _)| *a != attr) {
                        if let Some(v) = store.get_attr(oid, attr) {
                            row.push((attr, v.clone()));
                        }
                    }
                }
            }
            let start = out.bytes.len();
            encode_variant(&row, &mut out.bytes);
            out.directory.insert(oid, (start, out.bytes.len() - start));
        }
        out
    }

    /// Fetches an attribute by decoding the full variant row.
    pub fn fetch(&self, oid: Oid, attr: Sym) -> Fetched {
        match self.directory.get(&oid) {
            Some(&(start, len)) => {
                let row = decode_variant(&self.bytes[start..start + len], resolve_sym)
                    .expect("self-encoded rows decode");
                Fetched {
                    value: row.into_iter().find(|(a, _)| *a == attr).map(|(_, v)| v),
                    probes: 1,
                }
            }
            None => Fetched { value: None, probes: 1 },
        }
    }

    /// Total encoded bytes (bigger than the partitioned layout: tags and
    /// attribute ids are stored per row).
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chc_workloads::{build_hospital, HospitalParams};

    fn db() -> chc_workloads::HospitalDb {
        build_hospital(&HospitalParams {
            patients: 300,
            tubercular_fraction: 0.1,
            alcoholic_fraction: 0.1,
            ambulatory_fraction: 0.1,
            ..Default::default()
        })
    }

    #[test]
    fn partitions_by_exceptional_signature() {
        let db = db();
        let s = &db.virtualized.schema;
        let part = PartitionedStore::build(
            s,
            &db.store,
            db.ids.patient,
            &[db.ids.tubercular, db.ids.alcoholic, db.ids.ambulatory],
        )
        .unwrap();
        // plain(+cancer), tb, alc, amb signatures appear.
        assert_eq!(part.num_fragments(), 4);
        let total: usize = part.fragment_sizes().iter().map(|(_, n)| n).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn all_strategies_agree_on_values() {
        let db = db();
        let s = &db.virtualized.schema;
        let part = PartitionedStore::build(
            s,
            &db.store,
            db.ids.patient,
            &[db.ids.tubercular, db.ids.alcoholic, db.ids.ambulatory],
        )
        .unwrap();
        let variant = VariantStore::build(s, &db.store, db.ids.patient);
        for &p in db.patients.iter().take(50) {
            for attr in [db.ids.name, db.ids.age, db.ids.treated_by, db.ids.ward] {
                let a = part.fetch_scan(p, attr).value;
                let b = part.fetch_directory(p, attr).value;
                let c = part.fetch_guided(p, attr, &[], &[]).value;
                let d = variant.fetch(p, attr).value;
                assert_eq!(a, b);
                assert_eq!(a, c);
                assert_eq!(a, d);
                assert_eq!(a, db.store.get_attr(p, attr).cloned());
            }
        }
    }

    #[test]
    fn guided_fetch_probes_fewer_fragments() {
        let db = db();
        let s = &db.virtualized.schema;
        let part = PartitionedStore::build(
            s,
            &db.store,
            db.ids.patient,
            &[db.ids.tubercular, db.ids.alcoholic, db.ids.ambulatory],
        )
        .unwrap();
        // A patient known (by type deduction from a guard) to be plain.
        let plain = db
            .patients
            .iter()
            .copied()
            .find(|&p| {
                !db.store.is_member(p, db.ids.tubercular)
                    && !db.store.is_member(p, db.ids.alcoholic)
                    && !db.store.is_member(p, db.ids.ambulatory)
            })
            .unwrap();
        let guided = part.fetch_guided(
            plain,
            db.ids.name,
            &[],
            &[db.ids.tubercular, db.ids.alcoholic, db.ids.ambulatory],
        );
        assert_eq!(guided.probes, 1, "knowledge pins the fragment");
        let scan = part.fetch_scan(plain, db.ids.name);
        assert!(scan.probes >= guided.probes);
        assert_eq!(guided.value, scan.value);

        // Positive knowledge pins an exceptional fragment directly.
        let tb = db
            .patients
            .iter()
            .copied()
            .find(|&p| db.store.is_member(p, db.ids.tubercular))
            .unwrap();
        let guided_tb = part.fetch_guided(tb, db.ids.name, &[db.ids.tubercular], &[]);
        assert_eq!(guided_tb.probes, 1);
    }

    #[test]
    fn variant_table_is_larger_than_partitioned() {
        let db = db();
        let s = &db.virtualized.schema;
        let part = PartitionedStore::build(
            s,
            &db.store,
            db.ids.patient,
            &[db.ids.tubercular, db.ids.alcoholic, db.ids.ambulatory],
        )
        .unwrap();
        let variant = VariantStore::build(s, &db.store, db.ids.patient);
        assert!(
            variant.byte_len() > part.byte_len(),
            "variant {} <= partitioned {}",
            variant.byte_len(),
            part.byte_len()
        );
    }

    #[test]
    fn missing_objects_and_attrs() {
        let db = db();
        let s = &db.virtualized.schema;
        let part = PartitionedStore::build(s, &db.store, db.ids.patient, &[db.ids.tubercular])
            .unwrap();
        let ghost = Oid::from_raw(u64::MAX);
        assert_eq!(part.fetch_scan(ghost, db.ids.name).value, None);
        assert_eq!(part.fetch_directory(ghost, db.ids.name).value, None);
        // An ambulatory patient's ward is genuinely absent.
        if let Some(amb) = db
            .patients
            .iter()
            .copied()
            .find(|&p| db.store.is_member(p, db.ids.ambulatory))
        {
            assert_eq!(part.fetch_directory(amb, db.ids.ward).value, None);
        }
    }
}
