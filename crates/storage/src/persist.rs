//! Disk persistence for partitioned stores.
//!
//! §5.5's fragments are "logical files"; this module makes them physical.
//! Layout on disk:
//!
//! ```text
//! <dir>/manifest.chc      fragment count + per-fragment signature (class names)
//! <dir>/frag_<i>.chc      record format (attr names + kinds) and rows
//! ```
//!
//! Attribute and class names are stored as strings, not symbol indexes,
//! so a store written under one schema loads under any schema that still
//! defines the same names — symbol ids are re-resolved at load time.

use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

use chc_model::{ClassId, Oid, Schema};

use crate::engine::PartitionedStore;
use crate::fragment::Fragment;
use crate::record::{FieldKind, RecordFormat};

/// A persistence failure.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a valid store image.
    Corrupt(String),
    /// A stored name does not resolve in the loading schema.
    UnknownName(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Corrupt(what) => write!(f, "corrupt store image: {what}"),
            PersistError::UnknownName(n) => {
                write!(f, "stored name `{n}` does not exist in the loading schema")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

const MAGIC: &[u8; 8] = b"CHCSTOR1";

fn kind_code(kind: FieldKind) -> u8 {
    match kind {
        FieldKind::Int => 0,
        FieldKind::Tok => 1,
        FieldKind::Str => 2,
        FieldKind::Surrogate => 3,
        FieldKind::Tuple => 4,
        FieldKind::Missing => 5,
    }
}

fn kind_from(code: u8) -> Result<FieldKind, PersistError> {
    Ok(match code {
        0 => FieldKind::Int,
        1 => FieldKind::Tok,
        2 => FieldKind::Str,
        3 => FieldKind::Surrogate,
        4 => FieldKind::Tuple,
        5 => FieldKind::Missing,
        other => return Err(PersistError::Corrupt(format!("bad kind byte {other}"))),
    })
}

fn write_str(out: &mut impl Write, s: &str) -> io::Result<()> {
    out.write_all(&(s.len() as u32).to_le_bytes())?;
    out.write_all(s.as_bytes())
}

fn read_str(inp: &mut impl Read) -> Result<String, PersistError> {
    let mut len = [0u8; 4];
    inp.read_exact(&mut len)?;
    let mut buf = vec![0u8; u32::from_le_bytes(len) as usize];
    inp.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| PersistError::Corrupt("non-utf8 name".into()))
}

impl PartitionedStore {
    /// Writes the store to a directory (created if absent).
    pub fn save_to_dir(&self, schema: &Schema, dir: &Path) -> Result<(), PersistError> {
        fs::create_dir_all(dir)?;
        let mut manifest = Vec::new();
        manifest.extend_from_slice(MAGIC);
        manifest.extend_from_slice(&(self.fragments_for_persist().len() as u32).to_le_bytes());
        manifest.extend_from_slice(&(self.exceptional.len() as u32).to_le_bytes());
        for &c in &self.exceptional {
            write_str(&mut manifest, schema.class_name(c))?;
        }
        for (i, (signature, frag)) in self.fragments_for_persist().iter().enumerate() {
            manifest.extend_from_slice(&(signature.len() as u32).to_le_bytes());
            for &c in signature {
                write_str(&mut manifest, schema.class_name(c))?;
            }
            let mut file = Vec::new();
            file.extend_from_slice(MAGIC);
            file.extend_from_slice(&(frag.format.fields.len() as u32).to_le_bytes());
            for &(attr, kind) in &frag.format.fields {
                write_str(&mut file, schema.resolve(attr))?;
                file.push(kind_code(kind));
            }
            file.extend_from_slice(&(frag.len() as u32).to_le_bytes());
            for (oid, row) in frag.scan(chc_model::Sym::from_raw) {
                let row = row.map_err(|e| PersistError::Corrupt(e.to_string()))?;
                file.extend_from_slice(&oid.raw().to_le_bytes());
                let mut bytes = Vec::new();
                crate::codec::encode_variant(&row, &mut bytes);
                file.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                file.extend_from_slice(&bytes);
            }
            fs::write(dir.join(format!("frag_{i}.chc")), file)?;
        }
        fs::write(dir.join("manifest.chc"), manifest)?;
        Ok(())
    }

    /// Loads a store from a directory, re-resolving names against `schema`.
    pub fn load_from_dir(schema: &Schema, dir: &Path) -> Result<PartitionedStore, PersistError> {
        let manifest = fs::read(dir.join("manifest.chc"))?;
        let mut m = manifest.as_slice();
        let mut magic = [0u8; 8];
        m.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(PersistError::Corrupt("bad magic".into()));
        }
        let n_frags = read_u32(&mut m)? as usize;
        let n_exc = read_u32(&mut m)? as usize;
        let mut exceptional = Vec::with_capacity(n_exc);
        for _ in 0..n_exc {
            exceptional.push(resolve_class(schema, &read_str(&mut m)?)?);
        }
        let mut store = PartitionedStore::empty(exceptional);
        for i in 0..n_frags {
            let n_sig = read_u32(&mut m)? as usize;
            let mut signature = Vec::with_capacity(n_sig);
            for _ in 0..n_sig {
                signature.push(resolve_class(schema, &read_str(&mut m)?)?);
            }
            let file = fs::read(dir.join(format!("frag_{i}.chc")))?;
            let mut f = file.as_slice();
            let mut magic = [0u8; 8];
            f.read_exact(&mut magic)?;
            if &magic != MAGIC {
                return Err(PersistError::Corrupt(format!("bad magic in frag_{i}")));
            }
            let n_fields = read_u32(&mut f)? as usize;
            let mut fields = Vec::with_capacity(n_fields);
            for _ in 0..n_fields {
                let name = read_str(&mut f)?;
                let sym = schema.sym(&name).ok_or(PersistError::UnknownName(name))?;
                let mut code = [0u8; 1];
                f.read_exact(&mut code)?;
                fields.push((sym, kind_from(code[0])?));
            }
            fields.sort_by_key(|(a, _)| *a);
            let mut frag = Fragment::new(RecordFormat { fields });
            let n_rows = read_u32(&mut f)? as usize;
            for _ in 0..n_rows {
                let mut oid = [0u8; 8];
                f.read_exact(&mut oid)?;
                let oid = Oid::from_raw(u64::from_le_bytes(oid));
                let len = read_u32(&mut f)? as usize;
                let mut bytes = vec![0u8; len];
                f.read_exact(&mut bytes)?;
                let row = crate::codec::decode_variant(&bytes, chc_model::Sym::from_raw)
                    .map_err(|e| PersistError::Corrupt(e.to_string()))?;
                frag.insert(oid, |attr| {
                    row.iter().find(|(a, _)| *a == attr).map(|(_, v)| v.clone())
                })
                .map_err(|e| PersistError::Corrupt(e.to_string()))?;
            }
            store.push_fragment(signature, frag);
        }
        Ok(store)
    }
}

fn read_u32(inp: &mut impl Read) -> Result<u32, PersistError> {
    let mut b = [0u8; 4];
    inp.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn resolve_class(schema: &Schema, name: &str) -> Result<ClassId, PersistError> {
    schema
        .class_by_name(name)
        .ok_or_else(|| PersistError::UnknownName(name.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chc_workloads::{build_hospital, HospitalParams};

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("chc-persist-tests").join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trip() {
        let db = build_hospital(&HospitalParams {
            patients: 150,
            tubercular_fraction: 0.1,
            alcoholic_fraction: 0.1,
            ..Default::default()
        });
        let s = &db.virtualized.schema;
        let exceptional = [db.ids.tubercular, db.ids.alcoholic];
        let part = PartitionedStore::build(s, &db.store, db.ids.patient, &exceptional).unwrap();
        let dir = tmpdir("roundtrip");
        part.save_to_dir(s, &dir).unwrap();
        let loaded = PartitionedStore::load_from_dir(s, &dir).unwrap();
        assert_eq!(loaded.num_fragments(), part.num_fragments());
        for &p in &db.patients {
            for attr in [db.ids.name, db.ids.age, db.ids.treated_by] {
                assert_eq!(
                    loaded.fetch_directory(p, attr).value,
                    part.fetch_directory(p, attr).value
                );
            }
        }
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let db = build_hospital(&HospitalParams { patients: 10, ..Default::default() });
        let s = &db.virtualized.schema;
        let part = PartitionedStore::build(s, &db.store, db.ids.patient, &[]).unwrap();
        let dir = tmpdir("corrupt");
        part.save_to_dir(s, &dir).unwrap();
        fs::write(dir.join("manifest.chc"), b"NOTMAGIC").unwrap();
        assert!(matches!(
            PartitionedStore::load_from_dir(s, &dir),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn loading_under_a_different_schema_fails_on_unknown_names() {
        let db = build_hospital(&HospitalParams { patients: 10, ..Default::default() });
        let s = &db.virtualized.schema;
        let part =
            PartitionedStore::build(s, &db.store, db.ids.patient, &[db.ids.tubercular]).unwrap();
        let dir = tmpdir("wrong-schema");
        part.save_to_dir(s, &dir).unwrap();
        let other = chc_sdl::compile("class Lonely;").unwrap();
        assert!(matches!(
            PartitionedStore::load_from_dir(&other, &dir),
            Err(PersistError::UnknownName(_))
        ));
    }

    #[test]
    fn missing_directory_is_io_error() {
        let s = chc_sdl::compile("class A;").unwrap();
        assert!(matches!(
            PartitionedStore::load_from_dir(&s, Path::new("/nonexistent/chc")),
            Err(PersistError::Io(_))
        ));
    }
}
