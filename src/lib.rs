//! # excuses — Modeling Class Hierarchies with Contradictions
//!
//! A Rust implementation of Alexander Borgida's SIGMOD 1988 paper
//! *Modeling Class Hierarchies with Contradictions*: class hierarchies in
//! which a subclass may explicitly contradict ("excuse") constraints
//! inherited from its superclasses, while remaining both a sub*set* and a
//! sub*type* of them.
//!
//! This crate re-exports the whole workspace:
//!
//! * [`model`] — classes, ranges, excuses, schemas.
//! * [`sdl`] — the schema definition language (`class Alcoholic is-a
//!   Patient with treatedBy: Psychologist excuses treatedBy on Patient`).
//! * [`core`] — the checker, the §5.2 semantics, instance validation,
//!   virtual-class synthesis, schema evolution.
//! * [`types`] — conditional types, subtyping, narrowing, path safety.
//! * [`extent`] — object stores with automatic subset maintenance.
//! * [`query`] — typed queries with run-time check elimination.
//! * [`storage`] — semantic grouping and horizontal partitioning.
//! * [`lint`] — span-aware static-analysis lints (`L001`…) beyond the
//!   checker; see `docs/LINTS.md` for the catalogue.
//! * [`baselines`] — the rejected alternatives of §4.2, for comparison.
//! * [`workloads`] — deterministic generators for the experiments.
//! * [`obs`] — counters, histograms, and spans behind the `chc --trace`
//!   and `--stats` flags and the experiment reports.
//!
//! ## Quickstart
//!
//! ```
//! use excuses::sdl::compile;
//! use excuses::core::check;
//!
//! let schema = compile("
//!     class Physician;
//!     class Psychologist;
//!     class Patient with treatedBy: Physician;
//!     class Alcoholic is-a Patient with
//!         treatedBy: Psychologist excuses treatedBy on Patient;
//! ").unwrap();
//! let report = check(&schema);
//! assert!(report.is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use chc_baselines as baselines;
pub use chc_core as core;
pub use chc_extent as extent;
pub use chc_lint as lint;
pub use chc_model as model;
pub use chc_obs as obs;
pub use chc_query as query;
pub use chc_sdl as sdl;
pub use chc_storage as storage;
pub use chc_types as types;
pub use chc_workloads as workloads;
