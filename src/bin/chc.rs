//! `chc` — a command-line front end for schemas with contradictions.
//!
//! ```text
//! chc [--trace] [--stats] [--trace-out <f.json>] [--flame-out <f.folded>]
//!     [--stats-out <f.json>] [--audit-out <f.jsonl>] <command> ...
//!
//! chc check <schema.sdl> [--explain]     type-check a schema (exit 1 on errors);
//!                                        --explain prints an admissibility
//!                                        derivation for each diagnosed site
//! chc lint <schema.sdl> [--format text|json]
//!          [--allow <code>] [--warn <code>] [--deny <code>] [--deny warnings]
//!                                        run the static-analysis lints (docs/LINTS.md)
//! chc print <schema.sdl>                 canonical pretty-printed form
//! chc virtualize <schema.sdl>            show the §5.6 virtual classes
//!                                        (exit 1 if the virtualized schema has errors)
//! chc explain <schema.sdl> <Class> [<attr>]
//!                                        effective conditional types (§5.4)
//! chc analyze <schema.sdl> "<query>"     static safety analysis of a query
//! chc validate <schema.sdl> <data.chd> [--audit-summary]
//!                                        load instance data and validate it;
//!                                        --audit-summary prints admissions
//!                                        grouped by excuse (E11)
//! ```
//!
//! Global flags may appear anywhere, before or after the subcommand.
//! `--trace` prints a span tree (what ran, how long) and `--stats` the
//! counter table (subtype queries, classes checked, …) on **stderr**
//! after the command completes, so stdout stays machine-parseable
//! (`chc lint --format json --stats | jq` works); both aggregate through
//! a [`chc_obs::StatsRecorder`], and `--stats-out <file>` writes the
//! same snapshot as line-delimited JSON. `--trace-out <file>` writes the
//! event-level timeline as Chrome trace-event JSON (open it in
//! <https://ui.perfetto.dev> or `chrome://tracing`) and `--flame-out
//! <file>` writes folded stacks for flamegraph tools; both capture
//! through a [`chc_obs::TraceRecorder`]. `--audit-out <file>` writes the
//! structured audit ledger (one JSON line per executed run-time check,
//! naming the admitting excuse for every tolerated deviation) through a
//! bounded [`chc_obs::AuditRecorder`]. All sinks compose freely, and all
//! reporting and flushing happens even when the command fails — a
//! failing `check` is exactly the run whose trace you want.

use std::process::ExitCode;
use std::sync::Arc;

use excuses::core::{
    check, explain_admissibility, virtualize, MissingPolicy, Semantics, ValidationOptions,
};
use excuses::extent::{load_data, refresh_virtual_extents, validate_stored};
use excuses::lint::{LintCode, LintConfig, LintLevel};
use excuses::query::{compile as compile_query, parse_query, CheckMode};
use excuses::sdl::{compile_with_source, print_schema};
use excuses::types::{cond_of, render_cond, render_tyset, EntityFacts, TypeContext};

/// Global observability flags, accepted anywhere on the command line.
#[derive(Default)]
struct Flags {
    trace: bool,
    stats: bool,
    trace_out: Option<String>,
    flame_out: Option<String>,
    stats_out: Option<String>,
    audit_out: Option<String>,
    audit_summary: bool,
    explain: bool,
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (args, flags) = match take_flags(raw) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let stats_rec = (flags.trace || flags.stats || flags.stats_out.is_some())
        .then(|| Arc::new(chc_obs::StatsRecorder::new()));
    let trace_rec = (flags.trace_out.is_some() || flags.flame_out.is_some())
        .then(|| Arc::new(chc_obs::TraceRecorder::new()));
    let audit_rec = (flags.audit_out.is_some() || flags.audit_summary)
        .then(|| Arc::new(chc_obs::AuditRecorder::new()));
    let mut sinks: Vec<Arc<dyn chc_obs::Recorder>> = Vec::new();
    if let Some(r) = &stats_rec {
        sinks.push(r.clone());
    }
    if let Some(r) = &trace_rec {
        sinks.push(r.clone());
    }
    if let Some(r) = &audit_rec {
        sinks.push(r.clone());
    }
    let installed = !sinks.is_empty();
    if installed {
        let recorder: Arc<dyn chc_obs::Recorder> = if sinks.len() == 1 {
            sinks.pop().expect("one sink")
        } else {
            Arc::new(chc_obs::FanoutRecorder::new(sinks))
        };
        chc_obs::set_global(recorder);
    }
    let outcome = run(&args, &flags);
    // Report and flush unconditionally: a failing command is exactly the
    // run whose trace and counters matter most. Human-readable reports go
    // to stderr so stdout stays machine-parseable under `--format json`.
    if installed {
        chc_obs::clear_global();
    }
    let mut flush_err = None;
    if let Some(r) = &stats_rec {
        if flags.trace {
            eprint!("{}", r.render_tree());
        }
        if flags.stats {
            eprint!("{}", r.render_counters());
        }
        if let Some(path) = &flags.stats_out {
            if let Err(e) = std::fs::write(path, r.to_json_lines()) {
                flush_err = Some(format!("{path}: {e}"));
            }
        }
    }
    if let Some(r) = &trace_rec {
        if let Some(path) = &flags.trace_out {
            if let Err(e) = std::fs::write(path, r.to_chrome_trace()) {
                flush_err = Some(format!("{path}: {e}"));
            }
        }
        if let Some(path) = &flags.flame_out {
            if let Err(e) = std::fs::write(path, r.to_folded_stacks()) {
                flush_err = Some(format!("{path}: {e}"));
            }
        }
    }
    if let Some(r) = &audit_rec {
        if let Some(path) = &flags.audit_out {
            if let Err(e) = std::fs::write(path, r.to_json_lines()) {
                flush_err = Some(format!("{path}: {e}"));
            }
        }
        if flags.audit_summary {
            print!("{}", render_audit_summary(r));
        }
    }
    let code = match outcome {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    };
    match flush_err {
        Some(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
        None => code,
    }
}

/// Extracts the global flags from `args`, wherever they appear relative
/// to the subcommand; `--trace-out f.json` and `--trace-out=f.json` are
/// both accepted. Returns the remaining positional arguments.
fn take_flags(args: Vec<String>) -> Result<(Vec<String>, Flags), String> {
    let mut flags = Flags::default();
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value_of = |name: &str, inline: Option<&str>| -> Result<String, String> {
            match inline {
                Some(v) if !v.is_empty() => Ok(v.to_string()),
                Some(_) => Err(format!("{name} needs a file path")),
                None => it
                    .next()
                    .filter(|v| !v.starts_with("--"))
                    .ok_or_else(|| format!("{name} needs a file path")),
            }
        };
        match arg.as_str() {
            "--trace" => flags.trace = true,
            "--stats" => flags.stats = true,
            "--audit-summary" => flags.audit_summary = true,
            "--explain" => flags.explain = true,
            "--trace-out" => flags.trace_out = Some(value_of("--trace-out", None)?),
            "--flame-out" => flags.flame_out = Some(value_of("--flame-out", None)?),
            "--stats-out" => flags.stats_out = Some(value_of("--stats-out", None)?),
            "--audit-out" => flags.audit_out = Some(value_of("--audit-out", None)?),
            other => {
                if let Some(v) = other.strip_prefix("--trace-out=") {
                    flags.trace_out = Some(value_of("--trace-out", Some(v))?);
                } else if let Some(v) = other.strip_prefix("--flame-out=") {
                    flags.flame_out = Some(value_of("--flame-out", Some(v))?);
                } else if let Some(v) = other.strip_prefix("--stats-out=") {
                    flags.stats_out = Some(value_of("--stats-out", Some(v))?);
                } else if let Some(v) = other.strip_prefix("--audit-out=") {
                    flags.audit_out = Some(value_of("--audit-out", Some(v))?);
                } else {
                    rest.push(arg);
                }
            }
        }
    }
    Ok((rest, flags))
}

/// Renders the `--audit-summary` table from the ledger: §6 asks for
/// "statistics about exceptional cases", so admissions are grouped by
/// the excuse that admitted them.
fn render_audit_summary(rec: &chc_obs::AuditRecorder) -> String {
    use std::collections::BTreeMap;
    use std::fmt::Write as _;
    let mut checks = 0u64;
    let mut passed = 0u64;
    let mut violations = 0u64;
    let mut admitted: BTreeMap<(String, String, String, String), u64> = BTreeMap::new();
    for ev in rec.events() {
        if ev.name != chc_obs::names::EVENT_VALIDATE_CHECK {
            continue;
        }
        checks += 1;
        let get = |k: &str| {
            ev.get(k)
                .and_then(|v| v.as_str())
                .unwrap_or("?")
                .to_string()
        };
        match ev.get("verdict").and_then(|v| v.as_str()) {
            Some("pass") => passed += 1,
            Some("excused") => {
                *admitted
                    .entry((
                        get("excuser"),
                        get("excuse_attr"),
                        get("class"),
                        get("attr"),
                    ))
                    .or_insert(0) += 1;
            }
            _ => violations += 1,
        }
    }
    let admitted_total: u64 = admitted.values().sum();
    let mut out = format!(
        "audit: {checks} check(s) executed — {passed} passed, \
         {admitted_total} admitted by excuse, {violations} violation(s)\n"
    );
    for ((excuser, excuse_attr, class, attr), n) in &admitted {
        let _ = writeln!(
            out,
            "  `{excuser}.{excuse_attr}` excusing `{class}.{attr}`: {n}"
        );
    }
    if rec.dropped() > 0 {
        let _ = writeln!(
            out,
            "  (ring full: {} older record(s) evicted; totals reflect retained events only)",
            rec.dropped()
        );
    }
    out
}

/// Parses `chc lint`'s own arguments: `--format text|json` and repeated
/// `--allow/--warn/--deny <code|name>` (last one wins per lint), plus
/// `--deny warnings`. Returns the severity config and whether to emit JSON.
fn parse_lint_args(args: &[String]) -> Result<(LintConfig, bool), String> {
    let mut config = LintConfig::new();
    let mut json = false;
    let mut it = args.iter();
    let mut level_arg = |flag: &str, value: Option<&String>| -> Result<(), String> {
        let value = value.ok_or_else(|| format!("{flag} needs a lint code (e.g. L002)"))?;
        let level = match flag {
            "--allow" => LintLevel::Allow,
            "--warn" => LintLevel::Warn,
            _ => LintLevel::Deny,
        };
        if flag == "--deny" && value == "warnings" {
            config.deny_warnings = true;
            return Ok(());
        }
        let code = LintCode::parse(value)
            .ok_or_else(|| format!("unknown lint `{value}` (see docs/LINTS.md)"))?;
        config.set(code, level);
        Ok(())
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    return Err(format!(
                        "--format needs `text` or `json`, got `{}`",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            flag @ ("--allow" | "--warn" | "--deny") => level_arg(flag, it.next())?,
            other => return Err(format!("unknown lint option `{other}`")),
        }
    }
    Ok((config, json))
}

fn run(args: &[String], flags: &Flags) -> Result<ExitCode, String> {
    let usage = "usage: chc [--trace] [--stats] [--trace-out <f.json>] [--flame-out <f.folded>] [--stats-out <f.json>] [--audit-out <f.jsonl>] <check|lint|print|virtualize|explain|analyze|validate> <schema.sdl> [...]";
    let cmd = args.first().ok_or(usage)?;
    let path = args.get(1).ok_or(usage)?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let schema = {
        let _span = chc_obs::span(chc_obs::names::SPAN_CLI_COMPILE);
        compile_with_source(&src, path).map_err(|e| format!("{path}: {e}"))?
    };
    let _cmd_span = match cmd.as_str() {
        "check" => Some(chc_obs::span(chc_obs::names::SPAN_CLI_CHECK)),
        "lint" => Some(chc_obs::span(chc_obs::names::SPAN_CLI_LINT)),
        "validate" => Some(chc_obs::span(chc_obs::names::SPAN_CLI_VALIDATE)),
        "analyze" => Some(chc_obs::span(chc_obs::names::SPAN_CLI_ANALYZE)),
        _ => None,
    };

    match cmd.as_str() {
        "check" => {
            let report = check(&schema);
            if report.diagnostics.is_empty() {
                println!(
                    "{path}: {} classes, {} declarations — clean",
                    schema.num_classes(),
                    schema.num_attr_decls()
                );
                return Ok(ExitCode::SUCCESS);
            }
            println!("{}", report.render(&schema));
            if flags.explain {
                // One derivation per diagnosed (class, attribute) site:
                // the full argument for why the site is (in)coherent.
                let mut seen = std::collections::BTreeSet::new();
                for d in &report.diagnostics {
                    if seen.insert((d.class, d.attr)) {
                        println!(
                            "{}",
                            explain_admissibility(&schema, d.class, d.attr).render(&schema)
                        );
                    }
                }
            }
            let errors = report.errors().count();
            let warnings = report.warnings().count();
            println!("{errors} error(s), {warnings} warning(s)");
            Ok(if report.is_ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        "lint" => {
            let (config, json) = parse_lint_args(&args[2..])?;
            let report = excuses::lint::run(&schema, &config);
            if json {
                println!("{}", report.to_json(&schema).render());
            } else if report.findings.is_empty() {
                println!("{path}: {} classes — no lints fired", schema.num_classes());
            } else {
                println!(
                    "{}",
                    excuses::lint::render_report(&report, &schema, Some(&src))
                );
            }
            Ok(if report.is_ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        "print" => {
            print!("{}", print_schema(&schema));
            Ok(ExitCode::SUCCESS)
        }
        "virtualize" => {
            let v = virtualize(&schema).map_err(|e| e.to_string())?;
            if v.virtuals.is_empty() {
                println!("{path}: no embedded excuses; nothing to virtualize");
                return Ok(ExitCode::SUCCESS);
            }
            for info in &v.virtuals {
                let path_str: Vec<&str> = info.path.iter().map(|p| v.schema.resolve(*p)).collect();
                println!(
                    "virtual class {} is-a {} — extent = values of {} over {}",
                    v.schema.class_name(info.class),
                    v.schema.class_name(info.base),
                    path_str.join("."),
                    v.schema.class_name(info.root),
                );
            }
            let report = check(&v.schema);
            println!(
                "virtualized schema: {} classes, {}",
                v.schema.num_classes(),
                if report.is_ok() {
                    "clean"
                } else {
                    "HAS ERRORS"
                }
            );
            if !report.is_ok() {
                println!("{}", report.render(&v.schema));
            }
            Ok(if report.is_ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        "explain" => {
            let class_name = args.get(2).ok_or("explain needs a class name")?;
            let class = schema
                .class_by_name(class_name)
                .ok_or_else(|| format!("unknown class `{class_name}`"))?;
            let v = virtualize(&schema).map_err(|e| e.to_string())?;
            let ctx = TypeContext::with_virtuals(&v);
            let schema = &v.schema;
            let facts = EntityFacts::of_class(schema, class);
            let attrs: Vec<_> = match args.get(3) {
                Some(a) => {
                    vec![schema
                        .sym(a)
                        .ok_or_else(|| format!("unknown attribute `{a}`"))?]
                }
                None => schema.applicable_attrs(class).into_iter().collect(),
            };
            for attr in attrs {
                // The subtype-theory view: the conditional type each
                // declarer contributes…
                for (declarer, _) in schema.constraints_on(class, attr) {
                    if let Some(cond) = cond_of(schema, declarer, attr) {
                        println!(
                            "{} < [{} : {}]",
                            schema.class_name(declarer),
                            schema.resolve(attr),
                            render_cond(schema, &cond)
                        );
                    }
                }
                // …and the deduced effective type for instances of the class.
                match ctx.attr_type(&facts, attr) {
                    Some(ty) => println!(
                        "  {}.{} : {}",
                        class_name,
                        schema.resolve(attr),
                        render_tyset(schema, &ty)
                    ),
                    None => println!("  {}.{} : not applicable", class_name, schema.resolve(attr)),
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "analyze" => {
            let text = args.get(2).ok_or("analyze needs a query string")?;
            let v = virtualize(&schema).map_err(|e| e.to_string())?;
            let ctx = TypeContext::with_virtuals(&v);
            let query = parse_query(&v.schema, text).map_err(|e| e.to_string())?;
            match compile_query(&ctx, &query, CheckMode::Eliminate) {
                Ok(plan) => {
                    println!(
                        "static type : {}",
                        render_tyset(&v.schema, &plan.static_type)
                    );
                    println!("checks/row  : {}", plan.checks_per_row());
                    if plan.result_may_be_absent {
                        println!("warning     : the result may be absent for some database states");
                    }
                    for h in &plan.warnings {
                        println!("warning     : hazard at step {}: {:?}", h.step(), h);
                    }
                    if plan.warnings.is_empty() && !plan.result_may_be_absent {
                        println!("safe        : no run-time type error can occur");
                    }
                    Ok(ExitCode::SUCCESS)
                }
                Err(e) => {
                    println!("type error  : {e:?}");
                    Ok(ExitCode::FAILURE)
                }
            }
        }
        "validate" => {
            let data_path = args.get(2).ok_or("validate needs a data file")?;
            let src =
                std::fs::read_to_string(data_path).map_err(|e| format!("{data_path}: {e}"))?;
            let report = check(&schema);
            if !report.is_ok() {
                println!("{}", report.render(&schema));
                return Err("schema has errors; fix it before validating data".to_string());
            }
            let v = virtualize(&schema).map_err(|e| e.to_string())?;
            let mut data = load_data(&v.schema, &src).map_err(|e| e.to_string())?;
            refresh_virtual_extents(&mut data.store, &v);
            let opts = ValidationOptions {
                semantics: Semantics::Correct,
                missing: MissingPolicy::Absent,
            };
            let mut bad = 0usize;
            for (name, oid) in &data.names {
                // Ledger join key: which surrogate belongs to which
                // source-file name.
                chc_obs::event_with(|| {
                    chc_obs::Event::new(
                        chc_obs::EventLevel::Info,
                        chc_obs::names::EVENT_VALIDATE_OBJECT,
                    )
                    .field("name", name.as_str())
                    .field("object", oid.raw())
                });
                let violations = validate_stored(&v.schema, &data.store, opts, *oid);
                for viol in &violations {
                    println!("{name}: {}", viol.render(&v.schema));
                }
                bad += usize::from(!violations.is_empty());
            }
            println!("{} object(s), {} invalid", data.names.len(), bad);
            Ok(if bad == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        other => Err(format!("unknown command `{other}`\n{usage}")),
    }
}
