//! `chc` — a command-line front end for schemas with contradictions.
//!
//! ```text
//! chc [--trace] [--stats] [--trace-out <f.json>] [--flame-out <f.folded>]
//!     [--stats-out <f.json>] [--audit-out <f.jsonl>] [--profile-out <f.json>]
//!     [--crash-out <f.json>] [--watchdog <dur>]
//!     <command> ...
//!
//! chc check <schema.sdl> [--explain] [--incremental --since <old.sdl>]
//!                                        type-check a schema (exit 1 on errors);
//!                                        --explain prints an admissibility
//!                                        derivation for each diagnosed site;
//!                                        --incremental re-checks only the
//!                                        impact cone of the edits since the
//!                                        old schema, carrying the rest of
//!                                        the verdict over (same output)
//! chc lint <schema.sdl> [--format text|json] [--query <file.chq|"query">]
//!          [--allow <code>] [--warn <code>] [--deny <code>] [--deny warnings]
//!                                        run the static-analysis lints (docs/LINTS.md);
//!                                        --query adds the Q001–Q005 query
//!                                        safety analysis over a `.chq` batch
//!                                        or an ad-hoc query string
//! chc diff <old.sdl> <new.sdl> [--format text|json]
//!          [--allow <code>] [--warn <code>] [--deny <code>] [--deny warnings]
//!                                        semantically diff two schemas:
//!                                        classify every edit as additive,
//!                                        refining, or breaking; compute its
//!                                        impact cone over the is-a DAG; and
//!                                        run the D001–D005 evolution lints
//!                                        (exit 1 on denied findings)
//! chc print <schema.sdl>                 canonical pretty-printed form
//! chc virtualize <schema.sdl>            show the §5.6 virtual classes
//!                                        (exit 1 if the virtualized schema has errors)
//! chc explain <schema.sdl> <Class> [<attr>]
//!                                        effective conditional types (§5.4)
//! chc analyze <schema.sdl> "<query>"     deprecated alias for
//!                                        `chc lint <schema.sdl> --query "<query>"`
//! chc query <schema.sdl> <data.chd> "<query>"
//!                                        compile and run a query; rows on
//!                                        stdout, accounting on stderr
//! chc validate <schema.sdl> <data.chd> [--audit-summary]
//!                                        load instance data and validate it;
//!                                        --audit-summary prints admissions
//!                                        grouped by excuse (E11)
//! chc load <schema.sdl> [data.chd] [--mix validate=70,query=20,insert=9,evolve=1]
//!          [--threads N] [--duration 5s | --ops N] [--mode closed|open]
//!          [--rate R] [--think D] [--seed N] [--epsilon F] [--populate N]
//!          [--window D] [--report out.html] [--id NAME] [--hier classes=N,...]
//!                                        run a mixed load against the schema:
//!                                        latency percentiles per op type on
//!                                        stderr, `chc-load/1` JSON lines
//!                                        appended to $CHC_BENCH_JSON, and a
//!                                        self-contained HTML report via
//!                                        --report (docs/OBSERVABILITY.md)
//! chc profile <check|validate|query> <schema.sdl | --hier classes=N,...>
//!             [data.chd] ["query"] [--top N] [--label-cap K] [--interval 250us]
//!             [--mem]
//!                                        run the workload under cost
//!                                        attribution and the span-stack
//!                                        sampler: per-class hot-spot table
//!                                        and duplicate-work ratios on
//!                                        stderr, one summary line on
//!                                        stdout, `chc-profile/1` JSON via
//!                                        --profile-out, *sampled* folded
//!                                        stacks via --flame-out; --mem adds
//!                                        per-class bytes-allocated and
//!                                        peak-live columns from the
//!                                        tracking allocator
//! chc doctor <crash.json>                render a `chc-crash/1` report
//!                                        (written by --crash-out /
//!                                        $CHC_CRASH_DIR on panic or stall)
//!                                        human-readably on stdout
//! ```
//!
//! Global flags may appear anywhere, before or after the subcommand.
//! `--trace` prints a span tree (what ran, how long) and `--stats` the
//! counter table (subtype queries, classes checked, …) on **stderr**
//! after the command completes, so stdout stays machine-parseable
//! (`chc lint --format json --stats | jq` works); both aggregate through
//! a [`chc_obs::StatsRecorder`], and `--stats-out <file>` writes the
//! same snapshot as line-delimited JSON. `--trace-out <file>` writes the
//! event-level timeline as Chrome trace-event JSON (open it in
//! <https://ui.perfetto.dev> or `chrome://tracing`) and `--flame-out
//! <file>` writes folded stacks for flamegraph tools; both capture
//! through a [`chc_obs::TraceRecorder`]. `--audit-out <file>` writes the
//! structured audit ledger (one JSON line per executed run-time check,
//! naming the admitting excuse for every tolerated deviation) through a
//! bounded [`chc_obs::AuditRecorder`]. `--profile-out <file>` writes the
//! labeled cost-attribution snapshot (per-class counters and nanosecond
//! histograms, distinct-key counters) through a
//! [`chc_obs::ProfileRecorder`]; under `chc profile` the same file gets
//! the enriched `chc-profile/1` document with resolved class names and
//! sampled stacks. All sinks compose freely, and all
//! reporting and flushing happens even when the command fails — a
//! failing `check` is exactly the run whose trace you want.
//!
//! Two layers are always on, independent of flags: the
//! [`chc_obs::memalloc`] tracking allocator (every run knows its
//! alloc/free/peak totals, surfaced as `mem.*` counters in the stats
//! snapshot) and a [`chc_obs::FlightRecorder`] black box (a bounded
//! ring of recent span transitions and counter deltas). A panic — or a
//! stall, when `--watchdog <dur>` is armed — dumps a round-trip-checked
//! `chc-crash/1` report to `--crash-out` (or `$CHC_CRASH_DIR`) with the
//! flight tail, per-thread open-span stacks, counter and memory
//! snapshots, and the registered schema digest; the same panic hook
//! also flushes every `--*-out` sink, so a run that dies mid-command
//! still leaves its evidence on disk. `chc doctor` renders the report.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use excuses::core::{
    check, explain_admissibility, virtualize, MissingPolicy, Semantics, ValidationOptions,
};
use excuses::extent::{load_data, refresh_virtual_extents, validate_stored};
use excuses::lint::{LintCode, LintConfig, LintLevel};
use excuses::query::{
    compile as compile_query, execute, parse_query, parse_query_file, CheckMode,
};
use excuses::sdl::{compile_with_source, print_schema};
use excuses::types::{cond_of, render_cond, render_tyset, EntityFacts, TypeContext};
use excuses::workloads::{parse_duration, HierarchyParams, MixSpec, StopRule};

/// Every run is accounted by the tracking allocator: the fast path is a
/// few relaxed atomics (pinned by a smoke test in `chc_obs::memalloc`),
/// and in exchange `mem.*` counters, `chc profile --mem`, and crash
/// reports all know where the bytes went.
#[global_allocator]
static ALLOC: chc_obs::memalloc::TrackingAllocator = chc_obs::memalloc::TrackingAllocator;

/// Global observability flags, accepted anywhere on the command line.
#[derive(Default)]
struct Flags {
    trace: bool,
    stats: bool,
    trace_out: Option<String>,
    flame_out: Option<String>,
    stats_out: Option<String>,
    audit_out: Option<String>,
    profile_out: Option<String>,
    crash_out: Option<String>,
    watchdog: Option<std::time::Duration>,
    audit_summary: bool,
    explain: bool,
}

/// The flag-selected recorders and their `--*-out` destinations,
/// shareable with the panic hook: both the normal exit path and a
/// mid-run panic must flush the same files, whichever comes first.
struct Sinks {
    stats: Option<Arc<chc_obs::StatsRecorder>>,
    trace: Option<Arc<chc_obs::TraceRecorder>>,
    audit: Option<Arc<chc_obs::AuditRecorder>>,
    profile: Option<Arc<chc_obs::ProfileRecorder>>,
    stats_out: Option<String>,
    trace_out: Option<String>,
    flame_out: Option<String>,
    audit_out: Option<String>,
    profile_out: Option<String>,
    /// Under `chc profile` the enriched document is written by
    /// `run_profile_cmd`; the bare form is only flushed here when a
    /// panic kept that from happening.
    is_profile: bool,
    mem_done: AtomicBool,
    flushed: AtomicBool,
}

impl Sinks {
    /// Mirrors the tracking allocator's totals into the installed
    /// recorders as `mem.*` counters, once, while the global recorder
    /// is still up (call before [`chc_obs::clear_global`]).
    fn record_mem_counters(&self) {
        if self.mem_done.swap(true, Ordering::SeqCst) || !chc_obs::memalloc::installed() {
            return;
        }
        let m = chc_obs::memalloc::snapshot();
        chc_obs::counter(chc_obs::names::MEM_ALLOCS, m.allocs);
        chc_obs::counter(chc_obs::names::MEM_FREES, m.frees);
        chc_obs::counter(chc_obs::names::MEM_BYTES_TOTAL, m.bytes_total);
        chc_obs::counter(chc_obs::names::MEM_BYTES_LIVE, m.bytes_live);
        chc_obs::counter(chc_obs::names::MEM_BYTES_PEAK, m.bytes_peak);
    }

    /// Writes every configured `--*-out` file, once; later calls are
    /// no-ops, so the panic hook and the normal exit path can race
    /// safely. Returns the write errors.
    fn flush_files(&self, on_panic: bool) -> Vec<String> {
        if self.flushed.swap(true, Ordering::SeqCst) {
            return Vec::new();
        }
        let mut errs = Vec::new();
        let mut write = |path: &Option<String>, body: String| {
            if let Some(path) = path {
                if let Err(e) = std::fs::write(path, body) {
                    errs.push(format!("{path}: {e}"));
                }
            }
        };
        if let Some(r) = &self.stats {
            write(&self.stats_out, r.to_json_lines());
        }
        if let Some(r) = &self.trace {
            write(&self.trace_out, r.to_chrome_trace());
            write(&self.flame_out, r.to_folded_stacks());
        }
        if let Some(r) = &self.audit {
            write(&self.audit_out, r.to_json_lines());
        }
        if !self.is_profile || on_panic {
            if let Some(r) = &self.profile {
                write(&self.profile_out, r.to_json().render() + "\n");
            }
        }
        errs
    }
}

/// FNV-1a, for the schema digest embedded in crash reports.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Registers the compiled schema in the crash-report context, so a
/// post-mortem names the exact input that was being processed.
fn register_schema_context(path: &str, src: &str) {
    chc_obs::flight::set_context("schema_file", path);
    chc_obs::flight::set_context("schema_digest", &format!("{:016x}", fnv1a64(src.as_bytes())));
}

/// Best-effort extraction of a panic payload for the crash report.
fn panic_message(info: &std::panic::PanicHookInfo<'_>) -> String {
    let payload = if let Some(s) = info.payload().downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = info.payload().downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    match info.location() {
        Some(loc) => format!("{payload} (at {loc})"),
        None => payload,
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    chc_obs::flight::set_context("bin", concat!("chc ", env!("CARGO_PKG_VERSION")));
    chc_obs::flight::set_context("argv", &raw.join(" "));
    let (args, flags) = match take_flags(raw) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    // `profile` owns attribution and sampling: it parses its options up
    // front (the recorders need the cap and interval before install) and
    // takes over `--flame-out`, writing *sampled* folded stacks instead
    // of the tracer's event-derived ones.
    let profile_args = if args.first().is_some_and(|a| a == "profile") {
        match parse_profile_args(&args[1..]) {
            Ok(pa) => Some(pa),
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::from(2);
            }
        }
    } else {
        None
    };
    let is_profile = profile_args.is_some();
    let stats_rec = (flags.trace || flags.stats || flags.stats_out.is_some())
        .then(|| Arc::new(chc_obs::StatsRecorder::new()));
    let trace_rec = (flags.trace_out.is_some() || (flags.flame_out.is_some() && !is_profile))
        .then(|| Arc::new(chc_obs::TraceRecorder::new()));
    let audit_rec = (flags.audit_out.is_some() || flags.audit_summary)
        .then(|| Arc::new(chc_obs::AuditRecorder::new()));
    let profile_rec = (flags.profile_out.is_some() || is_profile).then(|| {
        let cap = profile_args
            .as_ref()
            .map(|pa| pa.label_cap)
            .unwrap_or(chc_obs::profile::DEFAULT_LABEL_CAP);
        Arc::new(chc_obs::ProfileRecorder::with_cap(cap))
    });
    let sampler = profile_args
        .as_ref()
        .map(|pa| Arc::new(chc_obs::SpanSampler::start(pa.interval)));
    // The black box is always on — the point of a flight recorder is
    // that it was running *before* anything went wrong — so every chc
    // run installs a recorder even with no flags at all.
    let flight = Arc::new(chc_obs::FlightRecorder::new());
    let mut sinks: Vec<Arc<dyn chc_obs::Recorder>> = vec![flight.clone()];
    if let Some(r) = &stats_rec {
        sinks.push(r.clone());
    }
    if let Some(r) = &trace_rec {
        sinks.push(r.clone());
    }
    if let Some(r) = &audit_rec {
        sinks.push(r.clone());
    }
    if let Some(r) = &profile_rec {
        sinks.push(r.clone());
    }
    if let Some(r) = &sampler {
        sinks.push(r.clone());
    }
    let recorder: Arc<dyn chc_obs::Recorder> = if sinks.len() == 1 {
        sinks.pop().expect("one sink")
    } else {
        Arc::new(chc_obs::FanoutRecorder::new(sinks))
    };
    chc_obs::set_global(recorder);

    let sinks = Arc::new(Sinks {
        stats: stats_rec.clone(),
        trace: trace_rec.clone(),
        audit: audit_rec.clone(),
        profile: profile_rec.clone(),
        stats_out: flags.stats_out.clone(),
        trace_out: flags.trace_out.clone(),
        flame_out: flags.flame_out.clone(),
        audit_out: flags.audit_out.clone(),
        profile_out: flags.profile_out.clone(),
        is_profile,
        mem_done: AtomicBool::new(false),
        flushed: AtomicBool::new(false),
    });

    // Crash destination: --crash-out wins, else $CHC_CRASH_DIR gets a
    // pid-stamped file. With neither, panics still flush the sinks but
    // no chc-crash/1 report is written.
    let crash_path: Option<PathBuf> = flags
        .crash_out
        .as_ref()
        .map(PathBuf::from)
        .or_else(|| {
            std::env::var("CHC_CRASH_DIR")
                .ok()
                .filter(|d| !d.is_empty())
                .map(|d| {
                    std::path::Path::new(&d)
                        .join(format!("chc-crash-{}.json", std::process::id()))
                })
        });
    let crash_writer = Arc::new(chc_obs::CrashWriter::new(flight.clone(), crash_path));
    {
        let hook_sinks = sinks.clone();
        let hook_crash = crash_writer.clone();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            prev(info);
            // The global recorder is still installed mid-panic, so the
            // mem.* counters land in the flushed snapshots too.
            hook_sinks.record_mem_counters();
            match hook_crash.dump("panic", &panic_message(info)) {
                Some(Ok(path)) => eprintln!("chc: crash report written to {}", path.display()),
                Some(Err(e)) => eprintln!("chc: failed to write crash report: {e}"),
                None => {}
            }
            for err in hook_sinks.flush_files(true) {
                eprintln!("chc: flush during panic: {err}");
            }
        }));
    }
    let mut watchdog = match flags.watchdog {
        Some(timeout) => {
            if crash_writer.path().is_none() {
                eprintln!("error: --watchdog needs --crash-out or $CHC_CRASH_DIR");
                return ExitCode::from(2);
            }
            Some(chc_obs::Watchdog::start(crash_writer.clone(), timeout))
        }
        None => None,
    };

    let outcome = match &profile_args {
        Some(pa) => run_profile_cmd(
            pa,
            &flags,
            profile_rec.as_ref().expect("profile recorder installed"),
            sampler.as_ref().expect("sampler installed"),
        ),
        None => run(&args, &flags),
    };
    if let Some(dog) = &mut watchdog {
        dog.stop();
    }
    // Report and flush unconditionally: a failing command is exactly the
    // run whose trace and counters matter most. Human-readable reports go
    // to stderr so stdout stays machine-parseable under `--format json`.
    sinks.record_mem_counters();
    chc_obs::clear_global();
    if let Some(r) = &stats_rec {
        if flags.trace {
            eprint!("{}", r.render_tree());
        }
        if flags.stats {
            eprint!("{}", r.render_counters());
        }
    }
    if let Some(r) = &audit_rec {
        if flags.audit_summary {
            print!("{}", render_audit_summary(r));
        }
    }
    let flush_err = sinks.flush_files(false).into_iter().next();
    let code = match outcome {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    };
    match flush_err {
        Some(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
        None => code,
    }
}

/// Extracts the global flags from `args`, wherever they appear relative
/// to the subcommand; `--trace-out f.json` and `--trace-out=f.json` are
/// both accepted. Returns the remaining positional arguments.
fn take_flags(args: Vec<String>) -> Result<(Vec<String>, Flags), String> {
    let mut flags = Flags::default();
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value_of = |name: &str, inline: Option<&str>| -> Result<String, String> {
            match inline {
                Some(v) if !v.is_empty() => Ok(v.to_string()),
                Some(_) => Err(format!("{name} needs a value")),
                None => it
                    .next()
                    .filter(|v| !v.starts_with("--"))
                    .ok_or_else(|| format!("{name} needs a value")),
            }
        };
        match arg.as_str() {
            "--trace" => flags.trace = true,
            "--stats" => flags.stats = true,
            "--audit-summary" => flags.audit_summary = true,
            "--explain" => flags.explain = true,
            "--trace-out" => flags.trace_out = Some(value_of("--trace-out", None)?),
            "--flame-out" => flags.flame_out = Some(value_of("--flame-out", None)?),
            "--stats-out" => flags.stats_out = Some(value_of("--stats-out", None)?),
            "--audit-out" => flags.audit_out = Some(value_of("--audit-out", None)?),
            "--profile-out" => flags.profile_out = Some(value_of("--profile-out", None)?),
            "--crash-out" => flags.crash_out = Some(value_of("--crash-out", None)?),
            "--watchdog" => {
                flags.watchdog = Some(parse_duration(&value_of("--watchdog", None)?)?)
            }
            other => {
                if let Some(v) = other.strip_prefix("--trace-out=") {
                    flags.trace_out = Some(value_of("--trace-out", Some(v))?);
                } else if let Some(v) = other.strip_prefix("--flame-out=") {
                    flags.flame_out = Some(value_of("--flame-out", Some(v))?);
                } else if let Some(v) = other.strip_prefix("--stats-out=") {
                    flags.stats_out = Some(value_of("--stats-out", Some(v))?);
                } else if let Some(v) = other.strip_prefix("--audit-out=") {
                    flags.audit_out = Some(value_of("--audit-out", Some(v))?);
                } else if let Some(v) = other.strip_prefix("--profile-out=") {
                    flags.profile_out = Some(value_of("--profile-out", Some(v))?);
                } else if let Some(v) = other.strip_prefix("--crash-out=") {
                    flags.crash_out = Some(value_of("--crash-out", Some(v))?);
                } else if let Some(v) = other.strip_prefix("--watchdog=") {
                    flags.watchdog = Some(parse_duration(&value_of("--watchdog", Some(v))?)?);
                } else {
                    rest.push(arg);
                }
            }
        }
    }
    Ok((rest, flags))
}

/// Renders the `--audit-summary` table from the ledger: §6 asks for
/// "statistics about exceptional cases", so admissions are grouped by
/// the excuse that admitted them.
fn render_audit_summary(rec: &chc_obs::AuditRecorder) -> String {
    use std::collections::BTreeMap;
    use std::fmt::Write as _;
    let mut checks = 0u64;
    let mut passed = 0u64;
    let mut violations = 0u64;
    let mut admitted: BTreeMap<(String, String, String, String), u64> = BTreeMap::new();
    for ev in rec.events() {
        if ev.name != chc_obs::names::EVENT_VALIDATE_CHECK {
            continue;
        }
        checks += 1;
        let get = |k: &str| {
            ev.get(k)
                .and_then(|v| v.as_str())
                .unwrap_or("?")
                .to_string()
        };
        match ev.get("verdict").and_then(|v| v.as_str()) {
            Some("pass") => passed += 1,
            Some("excused") => {
                *admitted
                    .entry((
                        get("excuser"),
                        get("excuse_attr"),
                        get("class"),
                        get("attr"),
                    ))
                    .or_insert(0) += 1;
            }
            _ => violations += 1,
        }
    }
    let admitted_total: u64 = admitted.values().sum();
    let mut out = format!(
        "audit: {checks} check(s) executed — {passed} passed, \
         {admitted_total} admitted by excuse, {violations} violation(s)\n"
    );
    for ((excuser, excuse_attr, class, attr), n) in &admitted {
        let _ = writeln!(
            out,
            "  `{excuser}.{excuse_attr}` excusing `{class}.{attr}`: {n}"
        );
    }
    if rec.dropped() > 0 {
        let _ = writeln!(
            out,
            "  (ring full: {} older record(s) evicted; totals reflect retained events only)",
            rec.dropped()
        );
    }
    out
}

/// Levenshtein distance between two short strings — the budget for the
/// "did you mean" suggestion when a `--allow/--warn/--deny` value names
/// no known lint.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// Resolves a lint code or name (`L002`, `dead-excuse`, `D001`, …); an
/// unknown value is an error, with the closest known code or name
/// suggested when it is plausibly a typo.
fn parse_lint_code_arg(value: &str) -> Result<LintCode, String> {
    if let Some(code) = LintCode::parse(value) {
        return Ok(code);
    }
    let lower = value.to_ascii_lowercase();
    let best = LintCode::ALL
        .iter()
        .flat_map(|c| [c.code(), c.name()])
        .map(|cand| (edit_distance(&lower, &cand.to_ascii_lowercase()), cand))
        .min();
    match best {
        Some((d, suggestion)) if d <= 3 => Err(format!(
            "unknown lint `{value}` (did you mean `{suggestion}`? see docs/LINTS.md)"
        )),
        _ => Err(format!("unknown lint `{value}` (see docs/LINTS.md)")),
    }
}

/// Applies one `--allow/--warn/--deny <code|name>` flag (shared by
/// `chc lint` and `chc diff`); `--deny warnings` escalates every warning.
fn apply_level_flag(
    config: &mut LintConfig,
    flag: &str,
    value: Option<&String>,
) -> Result<(), String> {
    let value = value.ok_or_else(|| format!("{flag} needs a lint code (e.g. L002)"))?;
    let level = match flag {
        "--allow" => LintLevel::Allow,
        "--warn" => LintLevel::Warn,
        _ => LintLevel::Deny,
    };
    if flag == "--deny" && value == "warnings" {
        config.deny_warnings = true;
        return Ok(());
    }
    config.set(parse_lint_code_arg(value)?, level);
    Ok(())
}

/// `chc lint`'s own arguments, parsed by [`parse_lint_args`].
struct LintArgs {
    config: LintConfig,
    json: bool,
    query: Option<String>,
    schema: Option<String>,
}

/// Parses `chc lint`'s own arguments: `--format text|json`, repeated
/// `--allow/--warn/--deny <code|name>` (last one wins per lint), `--deny
/// warnings`, and `--query <file.chq|"query">`. The schema path is the
/// sole positional argument and may appear anywhere among the flags.
fn parse_lint_args(args: &[String]) -> Result<LintArgs, String> {
    let mut config = LintConfig::new();
    let mut json = false;
    let mut query = None;
    let mut schema = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    return Err(format!(
                        "--format needs `text` or `json`, got `{}`",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            flag @ ("--allow" | "--warn" | "--deny") => {
                apply_level_flag(&mut config, flag, it.next())?
            }
            "--query" => {
                query = Some(
                    it.next()
                        .ok_or("--query needs a .chq file or a query string")?
                        .clone(),
                );
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown lint option `{other}`"))
            }
            other => {
                if schema.replace(other.to_string()).is_some() {
                    return Err(format!("unexpected lint argument `{other}`"));
                }
            }
        }
    }
    Ok(LintArgs {
        config,
        json,
        query,
        schema,
    })
}

/// `chc check`'s own arguments, parsed by [`parse_check_args`].
struct CheckArgs {
    schema: Option<String>,
    since: Option<String>,
}

/// Parses `chc check`'s own arguments: the schema path (anywhere among
/// the flags) plus `--incremental --since <old.sdl>`, which must appear
/// together — `--since` names the baseline, `--incremental` opts into
/// cone-scoped re-checking.
fn parse_check_args(args: &[String]) -> Result<CheckArgs, String> {
    let mut schema = None;
    let mut since = None;
    let mut incremental = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--incremental" => incremental = true,
            "--since" => {
                since = Some(
                    it.next()
                        .ok_or("--since needs the old schema (.sdl) to diff against")?
                        .clone(),
                );
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown check option `{other}`"))
            }
            other => {
                if schema.replace(other.to_string()).is_some() {
                    return Err(format!("unexpected check argument `{other}`"));
                }
            }
        }
    }
    if incremental != since.is_some() {
        return Err("--incremental and --since <old.sdl> go together".to_string());
    }
    Ok(CheckArgs { schema, since })
}

/// `chc diff`'s own arguments, parsed by [`parse_diff_args`].
struct DiffArgs {
    config: LintConfig,
    json: bool,
    old: String,
    new: String,
}

/// Parses `chc diff`'s own arguments: two positional schema paths (old
/// then new), `--format text|json`, and the same severity flags as
/// `chc lint`.
fn parse_diff_args(args: &[String]) -> Result<DiffArgs, String> {
    let mut config = LintConfig::new();
    let mut json = false;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    return Err(format!(
                        "--format needs `text` or `json`, got `{}`",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            flag @ ("--allow" | "--warn" | "--deny") => {
                apply_level_flag(&mut config, flag, it.next())?
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown diff option `{other}`"))
            }
            other => paths.push(other.to_string()),
        }
    }
    let mut paths = paths.into_iter();
    match (paths.next(), paths.next(), paths.next()) {
        (Some(old), Some(new), None) => Ok(DiffArgs { config, json, old, new }),
        _ => Err("diff needs exactly two schemas: chc diff <old.sdl> <new.sdl>".to_string()),
    }
}

/// The `chc-diff/1` JSON envelope: the classified edit list, the dirty
/// set (class names, in the new schema), edit counts by kind, and the
/// D-family lint report nested under `"lints"` as its own `chc-lint/1`
/// envelope.
fn diff_to_json(
    outcome: &excuses::lint::DiffReport,
    old_path: &str,
    new_path: &str,
    new_schema: &excuses::model::Schema,
) -> chc_obs::json::JsonValue {
    use chc_obs::json::JsonValue;
    use excuses::core::EditKind;
    let edits = outcome.diff.edits.iter().map(|e| {
        let mut fields: Vec<(&str, JsonValue)> = vec![
            ("kind", JsonValue::string(e.kind.label())),
            ("class", JsonValue::string(&e.class)),
            ("edit", JsonValue::string(&e.describe())),
        ];
        if let Some(attr) = &e.attr {
            fields.push(("attr", JsonValue::string(attr)));
        }
        // Locate the edit where it is visible: in the new file when the
        // declaration survives, in the old file when it was retired.
        if let Some(span) = e.new_span {
            fields.push(("line", JsonValue::number(span.line as f64)));
            fields.push(("col", JsonValue::number(span.col as f64)));
        } else if let Some(span) = e.old_span {
            fields.push(("old_line", JsonValue::number(span.line as f64)));
            fields.push(("old_col", JsonValue::number(span.col as f64)));
        }
        JsonValue::object(fields)
    });
    let names = |ids: &std::collections::BTreeSet<excuses::model::ClassId>| {
        JsonValue::array(ids.iter().map(|&c| JsonValue::string(new_schema.class_name(c))))
    };
    JsonValue::object([
        ("schema", JsonValue::string("chc-diff/1")),
        ("tool", JsonValue::string("chc-diff")),
        ("old", JsonValue::string(old_path)),
        ("new", JsonValue::string(new_path)),
        ("edits", JsonValue::array(edits)),
        (
            "dirty",
            JsonValue::object([
                ("classes", names(&outcome.dirty.classes)),
                ("extents", names(&outcome.dirty.extents)),
            ]),
        ),
        (
            "counts",
            JsonValue::object([
                ("edits", JsonValue::number(outcome.diff.edits.len() as f64)),
                ("additive", JsonValue::number(outcome.diff.count(EditKind::Additive) as f64)),
                ("refining", JsonValue::number(outcome.diff.count(EditKind::Refining) as f64)),
                ("breaking", JsonValue::number(outcome.diff.count(EditKind::Breaking) as f64)),
            ]),
        ),
        ("lints", outcome.report.to_json(new_schema)),
    ])
}

/// `chc diff <old.sdl> <new.sdl>`: compile both schemas, diff them
/// semantically, and run the D-family evolution lints over the edit
/// list. Text findings render rustc-style into whichever file anchors
/// them (retired declarations quote the old file); `--format json`
/// emits the `chc-diff/1` envelope. Exit 1 when a denied finding fired.
fn run_diff_cmd(args: &[String]) -> Result<ExitCode, String> {
    let da = parse_diff_args(args)?;
    let (old_path, new_path) = (da.old.as_str(), da.new.as_str());
    let old_src = std::fs::read_to_string(old_path).map_err(|e| format!("{old_path}: {e}"))?;
    let new_src = std::fs::read_to_string(new_path).map_err(|e| format!("{new_path}: {e}"))?;
    register_schema_context(new_path, &new_src);
    let (old_schema, new_schema) = {
        let _span = chc_obs::span(chc_obs::names::SPAN_CLI_COMPILE);
        (
            compile_with_source(&old_src, old_path).map_err(|e| format!("{old_path}: {e}"))?,
            compile_with_source(&new_src, new_path).map_err(|e| format!("{new_path}: {e}"))?,
        )
    };
    let outcome =
        excuses::lint::run_diff(&old_schema, &new_schema, Some(old_path), &da.config);
    if da.json {
        println!("{}", diff_to_json(&outcome, old_path, new_path, &new_schema).render());
    } else {
        if !outcome.report.findings.is_empty() {
            println!(
                "{}",
                excuses::lint::render_report_sources(
                    &outcome.report,
                    &new_schema,
                    Some(&new_src),
                    Some(&old_src),
                )
            );
        }
        use excuses::core::EditKind;
        println!(
            "{old_path} -> {new_path}: {} edit(s) ({} additive, {} refining, {} breaking); \
             dirty: {} class(es) to re-check, {} extent(s) to re-validate",
            outcome.diff.edits.len(),
            outcome.diff.count(EditKind::Additive),
            outcome.diff.count(EditKind::Refining),
            outcome.diff.count(EditKind::Breaking),
            outcome.dirty.classes.len(),
            outcome.dirty.extents.len(),
        );
    }
    Ok(if outcome.report.is_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `chc load`'s own arguments, parsed by [`parse_load_args`].
struct LoadArgs {
    schema: Option<String>,
    data: Option<String>,
    mix: MixSpec,
    threads: usize,
    stop: Option<StopRule>,
    open: bool,
    rate: f64,
    think: std::time::Duration,
    seed: u64,
    epsilon: f64,
    populate: usize,
    window: std::time::Duration,
    report: Option<String>,
    id: Option<String>,
    hier: Option<HierarchyParams>,
}

/// Parses `--hier classes=60,supers=2,attrs=8,tokens=8,redefine=0.4,contradict=0.3,seed=7`;
/// omitted keys keep the [`HierarchyParams`] defaults.
fn parse_hier_spec(spec: &str) -> Result<HierarchyParams, String> {
    let mut p = HierarchyParams::default();
    for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("--hier entry `{part}` is not `key=value`"))?;
        let value = value.trim();
        let int = || value.parse::<usize>().map_err(|e| format!("--hier {key}={value}: {e}"));
        let float = || value.parse::<f64>().map_err(|e| format!("--hier {key}={value}: {e}"));
        match key.trim() {
            "classes" => p.classes = int()?,
            "supers" => p.max_supers = int()?,
            "attrs" => p.attrs = int()?,
            "tokens" => p.tokens = int()?,
            "redefine" => p.redefine_rate = float()?,
            "contradict" => p.contradiction_rate = float()?,
            "seed" => p.seed = value.parse().map_err(|e| format!("--hier seed={value}: {e}"))?,
            other => {
                return Err(format!(
                    "unknown --hier key `{other}` (classes|supers|attrs|tokens|redefine|contradict|seed)"
                ))
            }
        }
    }
    Ok(p)
}

fn parse_load_args(args: &[String]) -> Result<LoadArgs, String> {
    let mut la = LoadArgs {
        schema: None,
        data: None,
        mix: MixSpec::default(),
        threads: 1,
        stop: None,
        open: false,
        rate: 1_000.0,
        think: std::time::Duration::ZERO,
        seed: 0xC_10AD,
        epsilon: 0.05,
        populate: 20,
        window: std::time::Duration::ZERO,
        report: None,
        id: None,
        hier: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--mix" => la.mix = MixSpec::parse(value_of("--mix")?)?,
            "--threads" => {
                la.threads = value_of("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--duration" => {
                la.stop = Some(StopRule::Duration(parse_duration(value_of("--duration")?)?))
            }
            "--ops" => {
                la.stop = Some(StopRule::Ops(
                    value_of("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?,
                ))
            }
            "--mode" => match value_of("--mode")?.as_str() {
                "closed" => la.open = false,
                "open" => la.open = true,
                other => return Err(format!("--mode needs `closed` or `open`, got `{other}`")),
            },
            "--rate" => {
                la.rate = value_of("--rate")?.parse().map_err(|e| format!("--rate: {e}"))?;
                la.open = true;
            }
            "--think" => la.think = parse_duration(value_of("--think")?)?,
            "--seed" => {
                la.seed = value_of("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?
            }
            "--epsilon" => {
                la.epsilon = value_of("--epsilon")?
                    .parse()
                    .map_err(|e| format!("--epsilon: {e}"))?;
                if !(0.0..=1.0).contains(&la.epsilon) {
                    return Err(format!("--epsilon must be in [0, 1], got {}", la.epsilon));
                }
            }
            "--populate" => {
                la.populate = value_of("--populate")?
                    .parse()
                    .map_err(|e| format!("--populate: {e}"))?
            }
            "--window" => la.window = parse_duration(value_of("--window")?)?,
            "--report" => la.report = Some(value_of("--report")?.clone()),
            "--id" => la.id = Some(value_of("--id")?.clone()),
            "--hier" => la.hier = Some(parse_hier_spec(value_of("--hier")?)?),
            other if other.starts_with("--") => {
                return Err(format!("unknown load option `{other}`"))
            }
            other => {
                if la.schema.is_none() {
                    la.schema = Some(other.to_string());
                } else if la.data.is_none() {
                    la.data = Some(other.to_string());
                } else {
                    return Err(format!("unexpected load argument `{other}`"));
                }
            }
        }
    }
    Ok(la)
}

fn run_load_cmd(args: &[String]) -> Result<ExitCode, String> {
    use excuses::workloads::{generate, LibraryTarget, LoadConfig, Mode, TargetOptions};

    let la = parse_load_args(args)?;

    // Schema: a generated hierarchy (`--hier`) or a compiled .sdl file.
    let (schema, default_id) = match (&la.hier, &la.schema) {
        (Some(params), _) => (generate(params).schema, "hier".to_string()),
        (None, Some(path)) => {
            let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            register_schema_context(path, &src);
            let schema = {
                let _span = chc_obs::span(chc_obs::names::SPAN_CLI_COMPILE);
                compile_with_source(&src, path).map_err(|e| format!("{path}: {e}"))?
            };
            let report = check(&schema);
            if !report.is_ok() {
                println!("{}", report.render(&schema));
                return Err("schema has errors; fix it before load-testing".to_string());
            }
            let stem = std::path::Path::new(path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("load")
                .to_string();
            (schema, stem)
        }
        (None, None) => return Err("load needs a schema file or --hier".to_string()),
    };

    // Target: load a data file if given, else populate synthetically.
    let opts = |missing: MissingPolicy| TargetOptions {
        epsilon: la.epsilon,
        validation: ValidationOptions {
            semantics: Semantics::Correct,
            missing,
        },
        ..TargetOptions::default()
    };
    let target = match &la.data {
        Some(data_path) => {
            let data_src =
                std::fs::read_to_string(data_path).map_err(|e| format!("{data_path}: {e}"))?;
            let v = virtualize(&schema).map_err(|e| e.to_string())?;
            let mut data = load_data(&v.schema, &data_src).map_err(|e| e.to_string())?;
            refresh_virtual_extents(&mut data.store, &v);
            let objects: Vec<_> = data.names.iter().map(|(_, oid)| *oid).collect();
            // Source-file objects carry exactly the attributes the file
            // declares, so missing values are violations (as in
            // `chc validate`); populated objects below are always total.
            LibraryTarget::new(v, data.store, objects, opts(MissingPolicy::Absent))
        }
        None => LibraryTarget::from_schema(&schema, la.populate, la.seed, opts(MissingPolicy::Vacuous))?,
    };

    let cfg = LoadConfig {
        id: la.id.unwrap_or(default_id),
        mix: la.mix,
        mode: if la.open {
            Mode::Open { threads: la.threads, rate: la.rate }
        } else {
            Mode::Closed { threads: la.threads, think: la.think }
        },
        stop: la.stop.unwrap_or(StopRule::Duration(std::time::Duration::from_secs(2))),
        seed: la.seed,
        window: la.window,
        ..LoadConfig::default()
    };
    let summary = excuses::workloads::run_load(&target, &cfg);

    // Accounting to stderr (the `chc query` convention), a one-line
    // result to stdout, JSON lines to $CHC_BENCH_JSON, HTML to --report.
    eprint!("{}", summary.render_text());
    if let Ok(path) = std::env::var("CHC_BENCH_JSON") {
        if !path.is_empty() {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| format!("CHC_BENCH_JSON={path}: {e}"))?;
            f.write_all(summary.to_bench_lines().as_bytes())
                .map_err(|e| format!("CHC_BENCH_JSON={path}: {e}"))?;
        }
    }
    if let Some(path) = &la.report {
        std::fs::write(path, excuses::workloads::driver::report::render_html(&summary))
            .map_err(|e| format!("{path}: {e}"))?;
    }
    println!(
        "load: {} ops in {:.2}s ({:.0} ops/s), p95 {} — {}",
        summary.total_ops,
        summary.elapsed.as_secs_f64(),
        summary.throughput(),
        format_ns_cli(summary.overall.p95),
        match &la.report {
            Some(p) => format!("report written to {p}"),
            None => "no report file (--report <out.html>)".to_string(),
        }
    );
    Ok(ExitCode::SUCCESS)
}

/// Which workload `chc profile` runs under attribution.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ProfileWorkload {
    Check,
    Validate,
    Query,
}

impl ProfileWorkload {
    fn name(self) -> &'static str {
        match self {
            ProfileWorkload::Check => "check",
            ProfileWorkload::Validate => "validate",
            ProfileWorkload::Query => "query",
        }
    }
}

/// Options of the `profile` subcommand (global flags are in [`Flags`]).
struct ProfileArgs {
    workload: ProfileWorkload,
    schema: Option<String>,
    hier: Option<HierarchyParams>,
    data: Option<String>,
    query: Option<String>,
    /// Rows in the hot-spot table.
    top: usize,
    /// Per-name label-cardinality cap for the attribution recorder.
    label_cap: usize,
    /// Sampling interval of the span-stack sampler.
    interval: std::time::Duration,
    /// Add per-class memory columns from the tracking allocator.
    mem: bool,
}

fn parse_profile_args(args: &[String]) -> Result<ProfileArgs, String> {
    let usage = "usage: chc profile <check|validate|query> <schema.sdl | --hier classes=N,...> \
                 [data.chd] [\"query\"] [--top N] [--label-cap K] [--interval 250us] [--mem] \
                 [--profile-out f.json] [--flame-out f.folded]";
    let mut pa = ProfileArgs {
        workload: ProfileWorkload::Check,
        schema: None,
        hier: None,
        data: None,
        query: None,
        top: 10,
        label_cap: 4096,
        interval: std::time::Duration::from_micros(250),
        mem: false,
    };
    let mut workload_seen = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--top" => {
                pa.top = value_of("--top")?.parse().map_err(|e| format!("--top: {e}"))?
            }
            "--label-cap" => {
                pa.label_cap = value_of("--label-cap")?
                    .parse()
                    .map_err(|e| format!("--label-cap: {e}"))?
            }
            "--interval" => pa.interval = parse_duration(value_of("--interval")?)?,
            "--mem" => pa.mem = true,
            "--hier" => pa.hier = Some(parse_hier_spec(value_of("--hier")?)?),
            other if other.starts_with("--") => {
                return Err(format!("unknown profile option `{other}`\n{usage}"))
            }
            other if !workload_seen => {
                workload_seen = true;
                pa.workload = match other {
                    "check" => ProfileWorkload::Check,
                    "validate" => ProfileWorkload::Validate,
                    "query" => ProfileWorkload::Query,
                    _ => return Err(format!("unknown profile workload `{other}`\n{usage}")),
                };
            }
            other => {
                if pa.schema.is_none() {
                    pa.schema = Some(other.to_string());
                } else if pa.data.is_none() {
                    pa.data = Some(other.to_string());
                } else if pa.query.is_none() {
                    pa.query = Some(other.to_string());
                } else {
                    return Err(format!("unexpected profile argument `{other}`\n{usage}"));
                }
            }
        }
    }
    if !workload_seen {
        return Err(usage.to_string());
    }
    if pa.schema.is_none() && pa.hier.is_none() {
        return Err("profile needs a schema file or --hier".to_string());
    }
    match pa.workload {
        ProfileWorkload::Check => {}
        ProfileWorkload::Validate => {
            if pa.data.is_none() {
                return Err("profile validate needs a data file".to_string());
            }
        }
        ProfileWorkload::Query => {
            if pa.data.is_none() || pa.query.is_none() {
                return Err("profile query needs a data file and a query string".to_string());
            }
        }
    }
    Ok(pa)
}

/// Runs the requested workload under the attribution recorder and the
/// span-stack sampler, then reports: a per-class hot-spot table and the
/// duplicate-work ratios on stderr, a one-line summary on stdout, the
/// `chc-profile/1` JSON document to `--profile-out`, and the *sampled*
/// folded stacks to `--flame-out`.
fn run_profile_cmd(
    pa: &ProfileArgs,
    flags: &Flags,
    profile: &Arc<chc_obs::ProfileRecorder>,
    sampler: &Arc<chc_obs::SpanSampler>,
) -> Result<ExitCode, String> {
    use excuses::workloads::generate;
    use std::fmt::Write as _;

    let span = chc_obs::span(chc_obs::names::SPAN_CLI_PROFILE);
    let (schema, source_name) = match (&pa.hier, &pa.schema) {
        (Some(params), _) => (
            generate(params).schema,
            format!("--hier classes={}", params.classes),
        ),
        (None, Some(path)) => {
            let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            register_schema_context(path, &src);
            let schema = {
                let _span = chc_obs::span(chc_obs::names::SPAN_CLI_COMPILE);
                compile_with_source(&src, path).map_err(|e| format!("{path}: {e}"))?
            };
            (schema, path.clone())
        }
        (None, None) => unreachable!("parse_profile_args requires a schema"),
    };

    // The workload itself. Diagnostics are counted, not printed — the
    // subject here is cost, and stdout stays one machine-greppable line.
    let mut workload_note = String::new();
    match pa.workload {
        ProfileWorkload::Check => {
            let report = check(&schema);
            let _ = write!(
                workload_note,
                "{} error(s), {} warning(s)",
                report.errors().count(),
                report.warnings().count()
            );
        }
        ProfileWorkload::Validate => {
            let data_path = pa.data.as_deref().expect("validated by the parser");
            let data_src =
                std::fs::read_to_string(data_path).map_err(|e| format!("{data_path}: {e}"))?;
            let report = check(&schema);
            if !report.is_ok() {
                return Err("schema has errors; fix it before validating data".to_string());
            }
            let v = virtualize(&schema).map_err(|e| e.to_string())?;
            let mut data = load_data(&v.schema, &data_src).map_err(|e| e.to_string())?;
            refresh_virtual_extents(&mut data.store, &v);
            let opts = ValidationOptions {
                semantics: Semantics::Correct,
                missing: MissingPolicy::Absent,
            };
            let mut bad = 0usize;
            for (_, oid) in &data.names {
                bad += usize::from(!validate_stored(&v.schema, &data.store, opts, *oid).is_empty());
            }
            let _ = write!(workload_note, "{} object(s), {} invalid", data.names.len(), bad);
        }
        ProfileWorkload::Query => {
            let data_path = pa.data.as_deref().expect("validated by the parser");
            let text = pa.query.as_deref().expect("validated by the parser");
            let data_src =
                std::fs::read_to_string(data_path).map_err(|e| format!("{data_path}: {e}"))?;
            let report = check(&schema);
            if !report.is_ok() {
                return Err("schema has errors; fix it before querying data".to_string());
            }
            let v = virtualize(&schema).map_err(|e| e.to_string())?;
            let ctx = TypeContext::with_virtuals(&v);
            let mut data = load_data(&v.schema, &data_src).map_err(|e| e.to_string())?;
            refresh_virtual_extents(&mut data.store, &v);
            let query =
                parse_query(&v.schema, text).map_err(|e| format!("query:{}: {e}", e.span))?;
            let plan = compile_query(&ctx, &query, CheckMode::Eliminate)
                .map_err(|e| format!("query type error: {e:?}"))?;
            let result = execute(&v.schema, &data.store, &plan);
            let _ = write!(
                workload_note,
                "{} row(s) scanned, {} emitted",
                result.stats.rows_scanned, result.stats.rows_emitted
            );
        }
    }
    drop(span);
    sampler.stop();

    // --- the hot-spot table (stderr) ---
    let nanos_by_class = profile
        .labeled_sums(chc_obs::names::CHECK_CLASS_NANOS)
        .map(|(entries, _other)| entries)
        .unwrap_or_default();
    let total_nanos: u64 = nanos_by_class.iter().map(|&(_, _, sum)| sum).sum();
    let labeled_of = |name: &str| -> std::collections::BTreeMap<u64, u64> {
        profile
            .labeled(name)
            .map(|s| s.entries.into_iter().collect())
            .unwrap_or_default()
    };
    let subtype_by_class = labeled_of(chc_obs::names::SUBTYPE_QUERIES);
    let sat_by_class = labeled_of(chc_obs::names::SAT_CALLS);
    let contra_by_class = labeled_of(chc_obs::names::CHECK_CONTRADICTIONS);
    let rows_by_class = labeled_of(chc_obs::names::QUERY_ROWS_SCANNED);
    let mem_bytes_by_class = labeled_of(chc_obs::names::MEM_CHECK_CLASS_BYTES);
    let mem_peak_by_class: std::collections::BTreeMap<u64, u64> = profile
        .labeled_max(chc_obs::names::MEM_CHECK_CLASS_PEAK)
        .map(|v| v.into_iter().collect())
        .unwrap_or_default();

    let subtype_total = profile.counter_value(chc_obs::names::SUBTYPE_QUERIES);
    let subtype_distinct = profile.counter_value(chc_obs::names::SUBTYPE_QUERIES_DISTINCT);
    let sat_total = profile.counter_value(chc_obs::names::SAT_CALLS);
    let sat_distinct = profile.counter_value(chc_obs::names::SAT_CALLS_DISTINCT);
    let ratio = |total: u64, distinct: u64| -> f64 {
        if distinct == 0 {
            1.0
        } else {
            total as f64 / distinct as f64
        }
    };

    let mut report = String::new();
    let _ = writeln!(
        report,
        "profile: {} {} — {} classes ({workload_note})",
        pa.workload.name(),
        source_name,
        schema.num_classes(),
    );
    let _ = writeln!(
        report,
        "  duplicate work: subtype.queries {subtype_total} / {subtype_distinct} distinct = {:.1}x, \
         sat.calls {sat_total} / {sat_distinct} distinct = {:.1}x",
        ratio(subtype_total, subtype_distinct),
        ratio(sat_total, sat_distinct),
    );
    let _ = writeln!(
        report,
        "  sampler: {} sample(s) at {} intervals, {} distinct stack path(s)",
        sampler.samples(),
        format_ns_cli(sampler.interval().as_nanos().min(u64::MAX as u128) as u64),
        sampler.folded_counts().len(),
    );
    if pa.mem {
        let _ = writeln!(
            report,
            "\n  {:<28} {:>10} {:>7} {:>9} {:>7} {:>7} {:>9} {:>10} {:>10}",
            "class", "time", "share", "subtype", "sat", "contra", "rows", "alloc", "peak"
        );
    } else {
        let _ = writeln!(
            report,
            "\n  {:<28} {:>10} {:>7} {:>9} {:>7} {:>7} {:>9}",
            "class", "time", "share", "subtype", "sat", "contra", "rows"
        );
    }
    let shown = nanos_by_class.iter().take(pa.top);
    for &(label, _count, sum) in shown {
        let class = chc_model::ClassId::from_raw(label as u32);
        let share = if total_nanos == 0 {
            0.0
        } else {
            100.0 * sum as f64 / total_nanos as f64
        };
        if pa.mem {
            let _ = writeln!(
                report,
                "  {:<28} {:>10} {:>6.1}% {:>9} {:>7} {:>7} {:>9} {:>10} {:>10}",
                schema.class_name(class),
                format_ns_cli(sum),
                share,
                subtype_by_class.get(&label).copied().unwrap_or(0),
                sat_by_class.get(&label).copied().unwrap_or(0),
                contra_by_class.get(&label).copied().unwrap_or(0),
                rows_by_class.get(&label).copied().unwrap_or(0),
                format_bytes_cli(mem_bytes_by_class.get(&label).copied().unwrap_or(0)),
                format_bytes_cli(mem_peak_by_class.get(&label).copied().unwrap_or(0)),
            );
        } else {
            let _ = writeln!(
                report,
                "  {:<28} {:>10} {:>6.1}% {:>9} {:>7} {:>7} {:>9}",
                schema.class_name(class),
                format_ns_cli(sum),
                share,
                subtype_by_class.get(&label).copied().unwrap_or(0),
                sat_by_class.get(&label).copied().unwrap_or(0),
                contra_by_class.get(&label).copied().unwrap_or(0),
                rows_by_class.get(&label).copied().unwrap_or(0),
            );
        }
    }
    if nanos_by_class.len() > pa.top {
        let _ = writeln!(
            report,
            "  … {} more class(es); raise --top or read --profile-out",
            nanos_by_class.len() - pa.top
        );
    }
    if pa.mem {
        // Reconciliation against the process-wide allocator totals: the
        // per-class series can only account for what ran inside
        // `check_class`, so Σbytes ≤ global allocated and every class
        // peak ≤ global peak — if either inequality fails, the
        // attribution is broken.
        let m = chc_obs::memalloc::snapshot();
        let class_bytes: u64 = mem_bytes_by_class.values().sum();
        let class_peak = mem_peak_by_class.values().copied().max().unwrap_or(0);
        let pct = if m.bytes_total == 0 {
            0.0
        } else {
            100.0 * class_bytes as f64 / m.bytes_total as f64
        };
        let _ = writeln!(
            report,
            "  mem: global {} allocated, peak live {}; per-class Σ {} ({pct:.1}% of global), \
             max class peak {}",
            format_bytes_cli(m.bytes_total),
            format_bytes_cli(m.bytes_peak),
            format_bytes_cli(class_bytes),
            format_bytes_cli(class_peak),
        );
    }
    eprint!("{report}");

    // --- machine outputs ---
    if let Some(path) = &flags.flame_out {
        let folded = sampler.to_folded_stacks();
        std::fs::write(path, folded).map_err(|e| format!("{path}: {e}"))?;
    }
    if let Some(path) = &flags.profile_out {
        let doc = profile_json(pa, profile, sampler, &schema, &nanos_by_class, total_nanos);
        let text = doc.render();
        // Self-check: the document must parse back through chc_obs::json
        // before it is allowed on disk — an unparseable profile is a bug.
        chc_obs::json::parse(&text)
            .map_err(|e| format!("internal error: profile JSON does not round-trip: {e}"))?;
        std::fs::write(path, text + "\n").map_err(|e| format!("{path}: {e}"))?;
    }
    println!(
        "profile: {} — {} classes, subtype {}/{} ({:.1}x), sat {}/{} ({:.1}x), {} sample(s)",
        pa.workload.name(),
        schema.num_classes(),
        subtype_total,
        subtype_distinct,
        ratio(subtype_total, subtype_distinct),
        sat_total,
        sat_distinct,
        ratio(sat_total, sat_distinct),
        sampler.samples(),
    );
    Ok(ExitCode::SUCCESS)
}

/// The enriched `chc-profile/1` document: the recorder's own export plus
/// the workload name, the name-resolved hot-class table, and the sampled
/// stacks.
fn profile_json(
    pa: &ProfileArgs,
    profile: &chc_obs::ProfileRecorder,
    sampler: &chc_obs::SpanSampler,
    schema: &chc_model::Schema,
    nanos_by_class: &[(u64, u64, u64)],
    total_nanos: u64,
) -> chc_obs::json::JsonValue {
    use chc_obs::json::JsonValue;
    let base = profile.to_json();
    let part = |key: &str| base.get(key).cloned().unwrap_or_else(|| JsonValue::object([]));
    let hot = JsonValue::array(nanos_by_class.iter().map(|&(label, _count, sum)| {
        let class = chc_model::ClassId::from_raw(label as u32);
        let share = if total_nanos == 0 {
            0.0
        } else {
            sum as f64 / total_nanos as f64
        };
        JsonValue::object([
            ("class", JsonValue::string(schema.class_name(class))),
            ("label", JsonValue::number(label as f64)),
            ("nanos", JsonValue::number(sum as f64)),
            ("share", JsonValue::number((share * 1_000.0).round() / 1_000.0)),
        ])
    }));
    let stacks = JsonValue::array(sampler.folded_counts().into_iter().map(|(path, count)| {
        JsonValue::object([
            ("stack", JsonValue::string(&path)),
            ("count", JsonValue::number(count as f64)),
        ])
    }));
    let sampler_obj = JsonValue::object([
        (
            "interval_nanos",
            JsonValue::number(sampler.interval().as_nanos().min(u64::MAX as u128) as f64),
        ),
        ("samples", JsonValue::number(sampler.samples() as f64)),
        ("idle", JsonValue::number(sampler.idle() as f64)),
        ("stacks", stacks),
    ]);
    let m = chc_obs::memalloc::snapshot();
    let mem_obj = JsonValue::object([
        (
            "installed",
            JsonValue::number(f64::from(u8::from(chc_obs::memalloc::installed()))),
        ),
        ("allocs", JsonValue::number(m.allocs as f64)),
        ("frees", JsonValue::number(m.frees as f64)),
        ("bytes_total", JsonValue::number(m.bytes_total as f64)),
        ("bytes_live", JsonValue::number(m.bytes_live as f64)),
        ("bytes_peak", JsonValue::number(m.bytes_peak as f64)),
    ]);
    JsonValue::object([
        ("schema", JsonValue::string("chc-profile/1")),
        ("workload", JsonValue::string(pa.workload.name())),
        ("mem", mem_obj),
        ("cap", part("cap")),
        ("counters", part("counters")),
        ("labeled", part("labeled")),
        ("histograms", part("histograms")),
        ("hot_classes", hot),
        ("sampler", sampler_obj),
    ])
}

/// `1.2MB`-style rendering for the memory columns.
fn format_bytes_cli(bytes: u64) -> String {
    if bytes < 1_024 {
        format!("{bytes}B")
    } else if bytes < 1_024 * 1_024 {
        format!("{:.1}KB", bytes as f64 / 1_024.0)
    } else if bytes < 1_024 * 1_024 * 1_024 {
        format!("{:.1}MB", bytes as f64 / (1_024.0 * 1_024.0))
    } else {
        format!("{:.2}GB", bytes as f64 / (1_024.0 * 1_024.0 * 1_024.0))
    }
}

/// `1.2us`-style rendering for the stdout summary line.
fn format_ns_cli(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1_000.0)
    } else {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    }
}

/// `chc doctor <crash.json>`: render a `chc-crash/1` report (written by
/// the panic hook or the `--watchdog` stall detector) human-readably.
/// The rendering is the command's *output*, so unlike the per-command
/// summaries it goes to stdout.
fn run_doctor_cmd(args: &[String]) -> Result<ExitCode, String> {
    let usage = "usage: chc doctor <crash.json>";
    let path = args.first().ok_or(usage)?;
    if args.len() > 1 {
        return Err(usage.to_string());
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = chc_obs::json::parse(&text).map_err(|e| format!("{path}: not valid JSON: {e}"))?;
    match doc.get("schema").and_then(|v| v.as_str()) {
        Some("chc-crash/1") => {}
        Some(other) => return Err(format!("{path}: unsupported schema `{other}` (want chc-crash/1)")),
        None => return Err(format!("{path}: missing `schema` tag (want chc-crash/1)")),
    }
    print!("{}", render_crash_report(&doc));
    Ok(ExitCode::SUCCESS)
}

/// The human-readable rendering behind `chc doctor`.
fn render_crash_report(doc: &chc_obs::json::JsonValue) -> String {
    use chc_obs::json::JsonValue;
    use std::fmt::Write as _;

    let str_of = |v: Option<&JsonValue>| v.and_then(|v| v.as_str()).unwrap_or("?").to_string();
    let num_of = |v: Option<&JsonValue>| v.and_then(|v| v.as_f64()).unwrap_or(0.0);
    let mut out = String::new();

    let reason = str_of(doc.get("reason"));
    let _ = writeln!(out, "chc crash report ({reason})");
    let _ = writeln!(out, "  message: {}", str_of(doc.get("message")));
    let _ = writeln!(
        out,
        "  pid {} after {}",
        num_of(doc.get("pid")) as u64,
        format_ns_cli((num_of(doc.get("uptime_us")) as u64).saturating_mul(1_000)),
    );

    if let Some(JsonValue::Obj(ctx)) = doc.get("context") {
        if !ctx.is_empty() {
            let _ = writeln!(out, "\ncontext:");
            for (k, v) in ctx {
                let _ = writeln!(out, "  {:<14} {}", k, v.as_str().unwrap_or("?"));
            }
        }
    }

    if let Some(mem) = doc.get("mem") {
        let installed = num_of(mem.get("installed")) as u64 == 1;
        if installed {
            let _ = writeln!(
                out,
                "\nmemory: {} allocated over {} allocs; live {} ({} allocs), peak {}",
                format_bytes_cli(num_of(mem.get("bytes_total")) as u64),
                num_of(mem.get("allocs")) as u64,
                format_bytes_cli(num_of(mem.get("bytes_live")) as u64),
                (num_of(mem.get("allocs")) as u64).saturating_sub(num_of(mem.get("frees")) as u64),
                format_bytes_cli(num_of(mem.get("bytes_peak")) as u64),
            );
        } else {
            let _ = writeln!(out, "\nmemory: tracking allocator not installed in this binary");
        }
    }

    if let Some(JsonValue::Obj(counters)) = doc.get("counters") {
        if !counters.is_empty() {
            let mut rows: Vec<(&str, u64)> = counters
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_f64().unwrap_or(0.0) as u64))
                .collect();
            rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
            let shown = rows.len().min(20);
            let _ = writeln!(out, "\ncounters (top {shown} of {}):", rows.len());
            for (name, value) in rows.iter().take(shown) {
                let _ = writeln!(out, "  {name:<32} {value:>12}");
            }
        }
    }

    let _ = writeln!(out, "\nopen spans at time of death:");
    let threads = doc.get("threads").and_then(|v| v.as_array()).unwrap_or(&[]);
    if threads.is_empty() {
        let _ = writeln!(out, "  (none)");
    }
    for t in threads {
        let stack: Vec<&str> = t
            .get("stack")
            .and_then(|v| v.as_array())
            .unwrap_or(&[])
            .iter()
            .filter_map(|v| v.as_str())
            .collect();
        let _ = writeln!(
            out,
            "  thread {}: {}",
            num_of(t.get("thread")) as u64,
            if stack.is_empty() {
                "(idle)".to_string()
            } else {
                stack.join(" > ")
            },
        );
    }

    let flight = doc.get("flight").and_then(|v| v.as_array()).unwrap_or(&[]);
    let dropped = num_of(doc.get("flight_dropped")) as u64;
    let shown = flight.len().min(40);
    let skipped = flight.len() - shown;
    let _ = write!(out, "\nflight tail (last {shown} of {} recorded", flight.len());
    if dropped > 0 {
        let _ = write!(out, ", {dropped} older dropped from ring");
    }
    let _ = writeln!(out, "):");
    if skipped > 0 {
        let _ = writeln!(out, "  … {skipped} earlier entr(ies) elided; read the JSON for all");
    }
    for e in flight.iter().skip(skipped) {
        let kind = str_of(e.get("kind"));
        let value = num_of(e.get("value")) as u64;
        let suffix = match kind.as_str() {
            "exit" => format!(" ({})", format_ns_cli(value)),
            "counter" => format!(" +{value}"),
            _ => String::new(),
        };
        let _ = writeln!(
            out,
            "  [{:>8}] t+{:<10} thread {} {:<7} {}{}",
            num_of(e.get("seq")) as u64,
            format_ns_cli((num_of(e.get("t_us")) as u64).saturating_mul(1_000)),
            num_of(e.get("thread")) as u64,
            kind,
            str_of(e.get("name")),
            suffix,
        );
    }
    out
}

fn run(args: &[String], flags: &Flags) -> Result<ExitCode, String> {
    let usage = "usage: chc [--trace] [--stats] [--trace-out <f.json>] [--flame-out <f.folded>] [--stats-out <f.json>] [--audit-out <f.jsonl>] [--profile-out <f.json>] [--crash-out <f.json>] [--watchdog <dur>] <check|lint|diff|print|virtualize|explain|analyze|query|validate|load|profile|doctor> <schema.sdl> [...]";
    let cmd = args.first().ok_or(usage)?;
    // `doctor` reads a crash report, not a schema: skip the compile.
    if cmd == "doctor" {
        return run_doctor_cmd(&args[1..]);
    }
    // `load` acquires its schema itself (`--hier` generates one instead
    // of reading a file), so it skips the generic compile below.
    if cmd == "load" {
        let _span = chc_obs::span(chc_obs::names::SPAN_CLI_LOAD);
        return run_load_cmd(&args[1..]);
    }
    // `diff` compiles two schemas, so it skips the generic single-schema
    // compile below too.
    if cmd == "diff" {
        let _span = chc_obs::span(chc_obs::names::SPAN_CLI_DIFF);
        return run_diff_cmd(&args[1..]);
    }
    // `lint` and `check` take their schema as a free positional among
    // their own flags (`chc lint --query q.chq schema.sdl` and
    // `chc check --incremental --since old.sdl new.sdl` are valid);
    // every other command takes it as the first argument.
    let lint_args = if cmd == "lint" {
        Some(parse_lint_args(&args[1..])?)
    } else {
        None
    };
    let check_args = if cmd == "check" {
        Some(parse_check_args(&args[1..])?)
    } else {
        None
    };
    let path = match (&lint_args, &check_args) {
        (Some(la), _) => la.schema.clone().ok_or(usage)?,
        (_, Some(ca)) => ca.schema.clone().ok_or(usage)?,
        _ => args.get(1).cloned().ok_or(usage)?,
    };
    let path = path.as_str();
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    register_schema_context(path, &src);
    let schema = {
        let _span = chc_obs::span(chc_obs::names::SPAN_CLI_COMPILE);
        compile_with_source(&src, path).map_err(|e| format!("{path}: {e}"))?
    };
    let _cmd_span = match cmd.as_str() {
        "check" => Some(chc_obs::span(chc_obs::names::SPAN_CLI_CHECK)),
        "lint" => Some(chc_obs::span(chc_obs::names::SPAN_CLI_LINT)),
        "validate" => Some(chc_obs::span(chc_obs::names::SPAN_CLI_VALIDATE)),
        "analyze" => Some(chc_obs::span(chc_obs::names::SPAN_CLI_ANALYZE)),
        "query" => Some(chc_obs::span(chc_obs::names::SPAN_CLI_QUERY)),
        _ => None,
    };

    match cmd.as_str() {
        "check" => {
            let ca = check_args.expect("parsed above for `check`");
            // With `--incremental --since <old.sdl>`, only classes in the
            // impact cone of the edits are re-checked; the rest of the
            // verdict is carried over from the old schema's report. The
            // stdout report is identical to a full check (the incremental
            // accounting goes to stderr), so the two modes can be diffed.
            let report = match &ca.since {
                Some(old_path) => {
                    let old_src = std::fs::read_to_string(old_path)
                        .map_err(|e| format!("{old_path}: {e}"))?;
                    let old_schema = compile_with_source(&old_src, old_path)
                        .map_err(|e| format!("{old_path}: {e}"))?;
                    let old_report = check(&old_schema);
                    let inc =
                        excuses::core::check_incremental(&old_schema, &old_report, &schema);
                    eprintln!(
                        "incremental: {} edit(s) since {old_path}; re-checked {} of {} class(es)",
                        inc.diff.edits.len(),
                        inc.dirty.classes.len(),
                        schema.num_classes(),
                    );
                    inc.report
                }
                None => check(&schema),
            };
            if report.diagnostics.is_empty() {
                println!(
                    "{path}: {} classes, {} declarations — clean",
                    schema.num_classes(),
                    schema.num_attr_decls()
                );
                return Ok(ExitCode::SUCCESS);
            }
            println!("{}", report.render(&schema));
            if flags.explain {
                // One derivation per diagnosed (class, attribute) site:
                // the full argument for why the site is (in)coherent.
                let mut seen = std::collections::BTreeSet::new();
                for d in &report.diagnostics {
                    if seen.insert((d.class, d.attr)) {
                        println!(
                            "{}",
                            explain_admissibility(&schema, d.class, d.attr).render(&schema)
                        );
                    }
                }
            }
            let errors = report.errors().count();
            let warnings = report.warnings().count();
            println!("{errors} error(s), {warnings} warning(s)");
            Ok(if report.is_ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        "lint" => {
            let la = lint_args.expect("parsed above for `lint`");
            let Some(qarg) = &la.query else {
                let report = excuses::lint::run(&schema, &la.config);
                if la.json {
                    println!("{}", report.to_json(&schema).render());
                } else if report.findings.is_empty() {
                    println!("{path}: {} classes — no lints fired", schema.num_classes());
                } else {
                    println!(
                        "{}",
                        excuses::lint::render_report(&report, &schema, Some(&src))
                    );
                }
                return Ok(if report.is_ok() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                });
            };
            // `--query` takes either a `.chq` batch file or an ad-hoc
            // query string; only the former gets a file name in locations.
            let (qtext, qfile) =
                if qarg.ends_with(".chq") || std::path::Path::new(qarg).is_file() {
                    let text =
                        std::fs::read_to_string(qarg).map_err(|e| format!("{qarg}: {e}"))?;
                    (text, Some(qarg.as_str()))
                } else {
                    (qarg.clone(), None)
                };
            let v = virtualize(&schema).map_err(|e| e.to_string())?;
            let queries = parse_query_file(&v.schema, &qtext).map_err(|e| {
                format!("{}:{}: {e}", qfile.unwrap_or("<query>"), e.span)
            })?;
            // Schema lints run over the original schema; query analysis
            // over the virtualized one. Both render against `v.schema`,
            // which preserves original class ids and the source map.
            let report =
                excuses::lint::run_with_queries(&schema, &v, &queries, qfile, &la.config);
            if la.json {
                println!("{}", report.to_json(&v.schema).render());
            } else if report.findings.is_empty() {
                println!(
                    "{path}: {} classes, {} quer{} — no lints fired",
                    schema.num_classes(),
                    queries.len(),
                    if queries.len() == 1 { "y" } else { "ies" }
                );
            } else {
                println!(
                    "{}",
                    excuses::lint::render_report_sources(
                        &report,
                        &v.schema,
                        Some(&src),
                        Some(&qtext)
                    )
                );
            }
            Ok(if report.is_ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        "print" => {
            print!("{}", print_schema(&schema));
            Ok(ExitCode::SUCCESS)
        }
        "virtualize" => {
            let v = virtualize(&schema).map_err(|e| e.to_string())?;
            if v.virtuals.is_empty() {
                println!("{path}: no embedded excuses; nothing to virtualize");
                return Ok(ExitCode::SUCCESS);
            }
            for info in &v.virtuals {
                let path_str: Vec<&str> = info.path.iter().map(|p| v.schema.resolve(*p)).collect();
                println!(
                    "virtual class {} is-a {} — extent = values of {} over {}",
                    v.schema.class_name(info.class),
                    v.schema.class_name(info.base),
                    path_str.join("."),
                    v.schema.class_name(info.root),
                );
            }
            let report = check(&v.schema);
            println!(
                "virtualized schema: {} classes, {}",
                v.schema.num_classes(),
                if report.is_ok() {
                    "clean"
                } else {
                    "HAS ERRORS"
                }
            );
            if !report.is_ok() {
                println!("{}", report.render(&v.schema));
            }
            Ok(if report.is_ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        "explain" => {
            let class_name = args.get(2).ok_or("explain needs a class name")?;
            let class = schema
                .class_by_name(class_name)
                .ok_or_else(|| format!("unknown class `{class_name}`"))?;
            let v = virtualize(&schema).map_err(|e| e.to_string())?;
            let ctx = TypeContext::with_virtuals(&v);
            let schema = &v.schema;
            let facts = EntityFacts::of_class(schema, class);
            let attrs: Vec<_> = match args.get(3) {
                Some(a) => {
                    vec![schema
                        .sym(a)
                        .ok_or_else(|| format!("unknown attribute `{a}`"))?]
                }
                None => schema.applicable_attrs(class).into_iter().collect(),
            };
            for attr in attrs {
                // The subtype-theory view: the conditional type each
                // declarer contributes…
                for (declarer, _) in schema.constraints_on(class, attr) {
                    if let Some(cond) = cond_of(schema, declarer, attr) {
                        println!(
                            "{} < [{} : {}]",
                            schema.class_name(declarer),
                            schema.resolve(attr),
                            render_cond(schema, &cond)
                        );
                    }
                }
                // …and the deduced effective type for instances of the class.
                match ctx.attr_type(&facts, attr) {
                    Some(ty) => println!(
                        "  {}.{} : {}",
                        class_name,
                        schema.resolve(attr),
                        render_tyset(schema, &ty)
                    ),
                    None => println!("  {}.{} : not applicable", class_name, schema.resolve(attr)),
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "analyze" => {
            let text = args.get(2).ok_or("analyze needs a query string")?;
            eprintln!(
                "note: `chc analyze` is deprecated; use `chc lint <schema.sdl> --query \"<query>\"`"
            );
            let v = virtualize(&schema).map_err(|e| e.to_string())?;
            let queries =
                parse_query_file(&v.schema, text).map_err(|e| format!("{}: {e}", e.span))?;
            let report =
                excuses::lint::run_queries(&v, &queries, None, &LintConfig::new());
            let rendered =
                excuses::lint::render_report_sources(&report, &v.schema, None, Some(text));
            if !rendered.is_empty() {
                println!("{rendered}");
            }
            // Definite compile-time errors (Q001/Q003 over a never-typed
            // result) render as `type error: …`; Q004's "no type error
            // can occur" must not trip this.
            let type_error = report
                .findings
                .iter()
                .any(|f| f.message.starts_with("type error"));
            if !type_error && report.is_ok() && report.warnings().next().is_none() {
                println!("safe        : no run-time type error can occur");
            }
            Ok(if type_error {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
        "query" => {
            let data_path = args.get(2).ok_or("query needs a data file")?;
            let text = args.get(3).ok_or("query needs a query string")?;
            let data_src =
                std::fs::read_to_string(data_path).map_err(|e| format!("{data_path}: {e}"))?;
            let report = check(&schema);
            if !report.is_ok() {
                println!("{}", report.render(&schema));
                return Err("schema has errors; fix it before querying data".to_string());
            }
            let v = virtualize(&schema).map_err(|e| e.to_string())?;
            let ctx = TypeContext::with_virtuals(&v);
            let mut data = load_data(&v.schema, &data_src).map_err(|e| e.to_string())?;
            refresh_virtual_extents(&mut data.store, &v);
            let query =
                parse_query(&v.schema, text).map_err(|e| format!("query:{}: {e}", e.span))?;
            let plan = match compile_query(&ctx, &query, CheckMode::Eliminate) {
                Ok(plan) => plan,
                Err(e) => {
                    eprintln!("query: type error: {e:?}");
                    return Ok(ExitCode::FAILURE);
                }
            };
            let result = execute(&v.schema, &data.store, &plan);
            // Rows on stdout, all accounting on stderr: `chc query … | sort`
            // sees only result values.
            for val in &result.values {
                println!("{}", val.render(&v.schema));
            }
            let warnings = plan.warnings.len() + usize::from(plan.result_may_be_absent);
            eprintln!(
                "query: {} row(s) scanned, {} emitted, {} check(s)/row, {} compile-time warning(s)",
                result.stats.rows_scanned,
                result.stats.rows_emitted,
                plan.checks_per_row(),
                warnings,
            );
            if plan.result_may_be_absent {
                eprintln!(
                    "query: result may be absent — {} row(s) skipped by the run-time check",
                    result.stats.rows_skipped_by_check,
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        "validate" => {
            let data_path = args.get(2).ok_or("validate needs a data file")?;
            let src =
                std::fs::read_to_string(data_path).map_err(|e| format!("{data_path}: {e}"))?;
            let report = check(&schema);
            if !report.is_ok() {
                println!("{}", report.render(&schema));
                return Err("schema has errors; fix it before validating data".to_string());
            }
            let v = virtualize(&schema).map_err(|e| e.to_string())?;
            let mut data = load_data(&v.schema, &src).map_err(|e| e.to_string())?;
            refresh_virtual_extents(&mut data.store, &v);
            let opts = ValidationOptions {
                semantics: Semantics::Correct,
                missing: MissingPolicy::Absent,
            };
            let mut bad = 0usize;
            for (name, oid) in &data.names {
                // Ledger join key: which surrogate belongs to which
                // source-file name.
                chc_obs::event_with(|| {
                    chc_obs::Event::new(
                        chc_obs::EventLevel::Info,
                        chc_obs::names::EVENT_VALIDATE_OBJECT,
                    )
                    .field("name", name.as_str())
                    .field("object", oid.raw())
                });
                let violations = validate_stored(&v.schema, &data.store, opts, *oid);
                for viol in &violations {
                    println!("{name}: {}", viol.render(&v.schema));
                }
                bad += usize::from(!violations.is_empty());
            }
            println!("{} object(s), {} invalid", data.names.len(), bad);
            Ok(if bad == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        other => Err(format!("unknown command `{other}`\n{usage}")),
    }
}
